"""Execution-kernel backends for the cycle simulator.

A kernel owns the simulator's hot inner loop: one block activation's
dataflow wake-up, operand routing, memory access, and commit
bookkeeping (see :class:`repro.uarch.components.ExecutionKernel`).
:class:`ScalarKernel` is the reference backend — the original
closure-based event-driven loop, moved here verbatim from
``CycleSimulator._execute_block`` so alternate backends (a vectorized
wavefront scheduler, ROADMAP item 1) can be dropped in behind the same
seam and checked bit-for-bit against it.

Kernels are *performance* variants only: every backend must produce
identical results and statistics for the same configuration.  The
``repro perf`` suite benchmarks them against each other
(``repro perf run --kernel-backend NAME``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.interp import TrapError
from repro.ir.types import wrap64

from repro.isa.asm import is_write_target, write_slot_of
from repro.isa.block import TripsBlock
from repro.isa.instructions import (
    Slot, TEST_OPS, TInst, TOp, TRIPS_LATENCY, operand_count,
)
from repro.trips.functional import NULL_TOKEN, _BINOPS, _as_int, _compute
from repro.trips.placement import Placement
from repro.trips.regalloc import bank_of

from repro.uarch.components import ExecutionKernel, KERNELS

_EXIT_SET = frozenset({TOp.BRO, TOp.CALLO, TOp.RET})


class _TimedBlock:
    """Per-activation dataflow state with timestamps."""

    __slots__ = ("values", "times", "pred_val", "pred_time", "arrived",
                 "fired", "mispredicated")

    def __init__(self, n: int) -> None:
        self.values: List[Dict[Slot, object]] = [None] * n
        self.times: List[Dict[Slot, int]] = [None] * n
        self.pred_val: List[object] = [None] * n
        self.pred_time: List[int] = [0] * n
        self.arrived = [0] * n
        self.fired = [False] * n
        self.mispredicated = [False] * n


class ScalarKernel(ExecutionKernel):
    """The reference event-driven scalar backend.

    One Python-level event per operand delivery and per instruction
    fire, with dataflow state held in per-activation lists.  This is
    the original simulator inner loop — the correctness baseline all
    other backends are differenced against.
    """

    name = "scalar"

    def __init__(self, config=None) -> None:
        self.config = config

    def execute_block(self, sim, block: TripsBlock, placement: Placement,
                      fetch_done: int) -> Tuple[TInst, int, int]:
        config = sim.config
        stats = sim.stats
        tracer = sim.tracer
        topology = sim.topology
        block_label = block.label
        n = len(block.instructions)
        state = _TimedBlock(n)
        dispatch_base = fetch_done + config.fetch_to_dispatch_cycles
        dispatch = [dispatch_base + i // config.dispatch_bandwidth
                    for i in range(n)]

        need = [operand_count(i.op) for i in block.instructions]
        preds = [i.predicate for i in block.instructions]
        ready: List[int] = []
        parked: List[int] = []
        resolved_stores: Dict[int, int] = {}      # lsid -> resolve time
        store_addr_time: Dict[int, Tuple[int, int, int]] = {}
        store_buffer: Dict[int, Tuple[int, object, TInst]] = {}
        store_lsids = sorted(block.store_lsids)
        write_values: Dict[int, Tuple[object, int]] = {}
        write_producers: Dict[int, int] = {}
        used_feed: List[List[int]] = [[] for _ in range(n)]
        exit_taken: Optional[TInst] = None
        exit_time = 0
        load_flush_penalty = 0

        def tile_of(index: int):
            return topology.et_coord(placement.tiles[index])

        def deliver(value, when: int, targets, producer_index: int,
                    src_coord) -> None:
            nonlocal exit_taken, exit_time
            for target in targets:
                if is_write_target(target):
                    slot = write_slot_of(target)
                    write = block.writes[slot]
                    bank = bank_of(write.reg)
                    arrive = sim.opn.send(src_coord, topology.rt_coord(bank),
                                          when,
                                          sim._class_of(src_coord, "rt"))
                    port = sim.rt_write_ports.claim(bank, arrive)
                    write_values[slot] = (value, port)
                    if producer_index >= 0:
                        write_producers[slot] = producer_index
                    continue
                index = target.inst
                if state.fired[index] or state.mispredicated[index]:
                    continue
                dst = tile_of(index)
                arrive = sim.opn.send(src_coord, dst, when,
                                      sim._class_of(src_coord, "et"))
                if target.slot is Slot.PRED:
                    if state.pred_val[index] is None:
                        actual = 1 if value and value is not NULL_TOKEN else 0
                        state.pred_val[index] = actual
                        state.pred_time[index] = sim._predicate_arrival(
                            block.label, index, actual, arrive,
                            dispatch[index])
                        if producer_index >= 0:
                            used_feed[index].append(producer_index)
                        check_ready(index)
                    continue
                slots = state.values[index]
                if slots is None:
                    slots = state.values[index] = {}
                    state.times[index] = {}
                if target.slot in slots:
                    continue
                slots[target.slot] = value
                state.times[index][target.slot] = arrive
                state.arrived[index] += 1
                if producer_index >= 0:
                    used_feed[index].append(producer_index)
                check_ready(index)

        def check_ready(index: int) -> None:
            if state.fired[index] or state.mispredicated[index]:
                return
            if state.arrived[index] < need[index]:
                return
            predicate = preds[index]
            if predicate is not None:
                arrived = state.pred_val[index]
                if arrived is None:
                    return
                wanted = 1 if predicate == "T" else 0
                if arrived != wanted:
                    state.mispredicated[index] = True
                    inst = block.instructions[index]
                    if inst.op is TOp.STORE:
                        resolved_stores[inst.lsid] = state.pred_time[index]
                        unpark()
                    return
            ready.append(index)

        def stores_resolved_below(lsid: int) -> Tuple[bool, int]:
            latest = 0
            for s in store_lsids:
                if s >= lsid:
                    break
                if s not in resolved_stores:
                    return False, 0
                latest = max(latest, resolved_stores[s])
            return True, latest

        def unpark() -> None:
            if parked:
                ready.extend(parked)
                parked.clear()

        def ready_time(index: int) -> int:
            times = state.times[index] or {}
            t = dispatch[index]
            for slot_time in times.values():
                t = max(t, slot_time)
            if preds[index] is not None:
                t = max(t, state.pred_time[index])
            return t

        def fire(index: int) -> None:
            nonlocal exit_taken, exit_time, load_flush_penalty
            inst = block.instructions[index]
            state.fired[index] = True
            stats.executed += 1
            tile = placement.tiles[index]
            coord = topology.et_coord(tile)
            t_ready = ready_time(index)
            issue = sim.et_issue.claim(tile, t_ready)
            latency = TRIPS_LATENCY.get(inst.op, 1)
            done = issue + latency
            slots = state.values[index] or {}
            op = inst.op
            # Loads may still park below (unresolved earlier stores), so
            # their issue event is emitted after the disambiguation check.
            if tracer is not None and op is not TOp.LOAD:
                tracer.emit("inst_issue", issue, label=block_label,
                            index=index, op=op.value, tile=tile)

            if op is TOp.LOAD:
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                ok, barrier = stores_resolved_below(inst.lsid)
                if not ok:
                    # The LSQ cannot disambiguate against unresolved
                    # earlier stores: hold the load until their addresses
                    # are known (a conservative LSQ; the dependence
                    # predictor below charges flushes when a load's data
                    # actually came from an in-flight store).
                    parked.append(index)
                    state.fired[index] = False
                    stats.executed -= 1
                    return
                stats.loads += 1
                stats.l1d_bytes += inst.width
                if tracer is not None:
                    tracer.emit("inst_issue", issue, label=block_label,
                                index=index, op=op.value, tile=tile)
                bank = sim.hierarchy.l1d.bank_of(address)
                depart = sim.opn.send(coord, topology.dt_coord(bank), done,
                                      "ET-DT")
                value, forwarded_from = sim._load_forwarded(
                    address, inst, store_buffer)
                finish = sim.hierarchy.l1d.access(address, depart)
                back = sim.opn.send(topology.dt_coord(bank), coord, finish,
                                    "ET-DT")
                if forwarded_from >= 0:
                    # The load consumed an in-flight store's data: had it
                    # issued speculatively it would have flushed.  Train
                    # the load-wait table; charge a flush the first time.
                    when, _addr, _w = store_addr_time[forwarded_from]
                    back = max(back, when + sim.config.l1d_hit_cycles)
                    static_id = hash((block.label, index)) & 0xFFFF
                    if static_id not in sim.lwt:
                        sim.lwt.add(static_id)
                        stats.load_flushes += 1
                        load_flush_penalty += \
                            sim.config.load_violation_flush_cycles
                        if tracer is not None:
                            tracer.emit(
                                "load_flush", back, label=block_label,
                                index=index,
                                penalty=sim.config
                                .load_violation_flush_cycles)
                if tracer is not None:
                    if forwarded_from >= 0:
                        tracer.emit("load_forward", back, label=block_label,
                                    index=index, lsid=inst.lsid,
                                    supplier=forwarded_from,
                                    address=address)
                    tracer.emit("inst_retire", back, label=block_label,
                                index=index, op=op.value, tile=tile)
                deliver(value, back, inst.targets, index,
                        topology.dt_coord(bank))
                return
            if op is TOp.STORE:
                stats.stores += 1
                stats.l1d_bytes += inst.width
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                value = slots[Slot.OP1]
                bank = sim.hierarchy.l1d.bank_of(address)
                arrive = sim.opn.send(coord, topology.dt_coord(bank), done,
                                      "ET-DT")
                # The store enters the DT's write buffer on arrival; a
                # miss is absorbed there and written back off the critical
                # path.  The bank's timing state still advances.
                sim.hierarchy.l1d.access(address, arrive, is_store=True)
                finish = arrive + sim.config.l1d_hit_cycles
                store_buffer[inst.lsid] = (address, value, inst)
                resolved_stores[inst.lsid] = finish
                store_addr_time[inst.lsid] = (finish, address, inst.width)
                if tracer is not None:
                    tracer.emit("inst_retire", finish, label=block_label,
                                index=index, op=op.value, tile=tile)
                unpark()
                return
            if op is TOp.NULL:
                if inst.lsid >= 0:
                    resolved_stores[inst.lsid] = done
                    unpark()
                if tracer is not None:
                    tracer.emit("inst_retire", done, label=block_label,
                                index=index, op=op.value, tile=tile)
                deliver(NULL_TOKEN, done, inst.targets, index, coord)
                return
            if op in _EXIT_SET:
                if exit_taken is not None:
                    raise TrapError(f"{block.label}: two exits fired")
                exit_taken = inst
                exit_time = sim.opn.send(coord, topology.gt_coord, done,
                                         "ET-GT")
                if tracer is not None:
                    tracer.emit("inst_retire", exit_time, label=block_label,
                                index=index, op=op.value, tile=tile)
                return
            if op in TEST_OPS:
                pass
            elif op is TOp.MOV:
                stats.moves += 1
            value = _compute(op, inst, slots)
            if tracer is not None:
                tracer.emit("inst_retire", done, label=block_label,
                            index=index, op=op.value, tile=tile)
            deliver(value, done, inst.targets, index, coord)

        # Register reads: RT bank ports, then routed to consumers.
        for read in block.reads:
            bank = bank_of(read.reg)
            when = sim.rt_read_ports.claim(
                bank, max(dispatch_base, sim.reg_ready[read.reg]))
            deliver(sim.regs[read.reg], when, read.targets, -1,
                    topology.rt_coord(bank))

        for index in range(n):
            if need[index] == 0 and preds[index] is None:
                ready.append(index)

        guard = 0
        while ready:
            index = ready.pop()
            if state.fired[index] or state.mispredicated[index]:
                continue
            guard += 1
            if guard > 40 * n + 1000:
                raise TrapError(f"{block.label}: execution livelock")
            fire(index)

        done_time = exit_time
        for slot, write in enumerate(block.writes):
            if slot not in write_values:
                raise TrapError(f"{block.label}: write w{slot} missing")
            value, when = write_values[slot]
            if value is not NULL_TOKEN:
                sim.regs[write.reg] = value
            sim.reg_ready[write.reg] = when
            done_time = max(done_time, when)
        for lsid in store_lsids:
            if lsid not in resolved_stores:
                raise TrapError(f"{block.label}: store {lsid} unresolved")
            done_time = max(done_time, resolved_stores[lsid])
        # Commit buffered stores to memory in load/store-ID order — the
        # LSQ's sequential-memory-semantics guarantee.
        for lsid in sorted(store_buffer):
            address, value, inst = store_buffer[lsid]
            sim._store_value(address, value, inst)
        if exit_taken is None:
            raise TrapError(f"{block.label}: no exit fired")
        done_time += load_flush_penalty

        # Statistics: composition and usage closure.
        sim._account(block, state, used_feed, write_producers, n)
        stats.blocks_committed += 1
        stats.fetched += n
        residency = max(1, done_time - dispatch_base)
        stats.window_inst_cycles += residency * n
        useful_count = sim._last_useful
        stats.window_useful_cycles += residency * useful_count
        return exit_taken, exit_time, done_time


KERNELS.register("scalar", lambda config=None: ScalarKernel(config))


# ---------------------------------------------------------------------------
# Batched backend
# ---------------------------------------------------------------------------

#: Instruction kind codes for the batched kernel's dispatch table.
_K_COMPUTE, _K_LOAD, _K_STORE, _K_NULL, _K_EXIT = range(5)

#: "No operand delivered yet" sentinel for the flat operand arrays
#: (distinct from NULL_TOKEN, which is a real dataflow value).
_ABSENT = object()

_SLOT_OP0 = Slot.OP0
_SLOT_OP1 = Slot.OP1


class _BlockStatics:
    """Per-label static decode of one block, cached by BatchedKernel.

    Everything here is a pure function of (block, placement, topology,
    config): it is computed once per label — with numpy when available
    (see :mod:`repro.uarch.vectors`) — and reused by every activation.
    """

    __slots__ = ("placement", "n", "insts", "need", "pred_want", "kinds",
                 "is_mov", "latency", "disp_off", "static_ready",
                 "store_lsids", "tiles", "coords", "targets", "read_plan",
                 "load_ids", "guard", "issue_claim", "ccode", "carg",
                 "exit_send", "has_senders")


class _FiredView:
    """Adapter giving ``CycleSimulator._account`` the one field it
    reads from the scalar kernel's state object."""

    __slots__ = ("fired",)

    def __init__(self, fired: List[bool]) -> None:
        self.fired = fired


class BatchedKernel(ExecutionKernel):
    """Throughput-optimized backend: skip-ahead timing + cached decode.

    Produces bit-identical cycles, statistics, and trace events to
    :class:`ScalarKernel` (the differential goldens pin this); the
    speed comes from three mechanisms that cannot change any timing
    decision:

    * **event-driven skip-ahead** — at attach time every resource pool
      (register ports, ET issue slots, OPN links, cache-bank ports,
      DRAM channels) is swapped for interval-based
      :class:`~repro.uarch.resources.SkipAheadPool` arbitration, which
      jumps over a busy run of cycles in one bisect instead of probing
      it cycle by cycle;
    * **static decode caching** — operand counts, predicate wants,
      dispatch offsets, tile coordinates, decoded target lists, and
      latencies are computed once per block label (vectorized with
      numpy when importable, pure Python otherwise) instead of on
      every activation;
    * **cached operand routing** — deliveries go through
      :meth:`~repro.uarch.opn.OperandNetwork.send_cached`, which holds
      each (src, dst) route and its link resources materialized.

    ``docs/KERNELS.md`` documents the performance model and the
    equivalence contract in detail.
    """

    name = "batched"

    def __init__(self, config=None) -> None:
        self.config = config
        self._attached_to = None
        self._statics: Dict[str, _BlockStatics] = {}
        self._use_numpy = False
        self._bank_shift_mask = None
        self._rt_read_claims: Tuple = ()
        self._rt_write_claims: Tuple = ()
        self._rt_coords: Tuple = ()
        self._dt_coords: Tuple = ()
        self._gt_coord = (0, 0)
        self._cls_from_et = ("ET-ET", "ET-RT")
        self._cls_from_dt = ("ET-DT", "DT-RT")
        self._cls_from_rt = ("ET-RT", "RT-RT")

    # -- capabilities / wiring -------------------------------------------

    def capabilities(self) -> Dict[str, bool]:
        from repro.uarch.vectors import numpy_available
        return {"vectorized": numpy_available(), "skip_ahead": True}

    def attach(self, sim) -> None:
        """Swap in skip-ahead pools and precompute simulator-wide
        tables.  Pools are only replaced while still empty, so calling
        this on a simulator that already ran is safe (a no-op for the
        pools, which then stay scalar but remain correct)."""
        from repro.trips.regalloc import NUM_BANKS
        from repro.uarch.caches import L1DataBanks
        from repro.uarch.resources import SkipAheadPool
        from repro.uarch.vectors import numpy_available, pow2_shift_mask

        self._attached_to = sim
        self._statics = {}
        self._use_numpy = numpy_available()

        for name in ("rt_read_ports", "rt_write_ports", "et_issue"):
            if not getattr(sim, name).resources:
                setattr(sim, name, SkipAheadPool())
        if not sim.opn.links.resources:
            sim.opn.links = SkipAheadPool()
        for owner in (getattr(sim.hierarchy, "l1d", None),
                      getattr(sim.hierarchy, "l2", None),
                      getattr(sim.hierarchy, "dram", None)):
            pool = getattr(owner, "_ports", None)
            if pool is not None and not pool.resources:
                owner._ports = SkipAheadPool()

        topology = sim.topology
        config = sim.config
        self._rt_read_claims = tuple(sim.rt_read_ports.resource(bank).claim
                                     for bank in range(NUM_BANKS))
        self._rt_write_claims = tuple(
            sim.rt_write_ports.resource(bank).claim
            for bank in range(NUM_BANKS))
        self._rt_coords = tuple(topology.rt_coord(bank)
                                for bank in range(NUM_BANKS))
        self._dt_coords = tuple(topology.dt_coord(bank)
                                for bank in range(config.l1d_banks))
        self._gt_coord = topology.gt_coord
        # Traffic-class strings by source tile kind (destination kinds
        # are fixed per call site), derived from the simulator's own
        # classifier so a future classifier change cannot desynchronize.
        class_of = sim._class_of
        self._cls_from_et = (class_of((1, 1), "et"), class_of((1, 1), "rt"))
        self._cls_from_dt = (class_of((0, 1), "et"), class_of((0, 1), "rt"))
        self._cls_from_rt = (class_of((1, 0), "et"), class_of((1, 0), "rt"))
        # Power-of-two L1-D geometry admits a shift/mask bank lookup;
        # only trusted when the hierarchy uses the stock interleave.
        l1d = getattr(sim.hierarchy, "l1d", None)
        if l1d is not None and \
                type(l1d).bank_of is L1DataBanks.bank_of:
            self._bank_shift_mask = pow2_shift_mask(
                config.l1d_line_bytes, config.l1d_banks)
        else:
            self._bank_shift_mask = None

    # -- static decode ----------------------------------------------------

    def _decode_targets(self, block: TripsBlock, targets, coords, opn,
                        src_coord, cls_to_et: str,
                        cls_to_rt: str) -> Tuple:
        """Decode a target list once: write targets to
        ``(0, slot, bank, rt_coord, sender)``, predicate targets to
        ``(1, index, dst_coord, sender)``, operand targets to
        ``(2, index, slot, dst_coord, sender)`` — order preserved,
        because delivery order decides resource arbitration.

        ``sender`` is a bound fast-path route closure for the *static*
        source coordinate (``opn.sender``); it is ``None`` when the
        simulator traces (per-hop events need the generic path) and is
        never used for load-result deliveries, whose source bank is
        dynamic.
        """
        rt_coords = self._rt_coords
        decoded = []
        for target in targets:
            if is_write_target(target):
                slot = write_slot_of(target)
                bank = bank_of(block.writes[slot].reg)
                sender = None if opn is None else \
                    opn.sender(src_coord, rt_coords[bank], cls_to_rt)
                decoded.append((0, slot, bank, rt_coords[bank], sender))
            elif target.slot is Slot.PRED:
                dst = coords[target.inst]
                sender = None if opn is None else \
                    opn.sender(src_coord, dst, cls_to_et)
                decoded.append((1, target.inst, dst, sender))
            else:
                dst = coords[target.inst]
                sender = None if opn is None else \
                    opn.sender(src_coord, dst, cls_to_et)
                decoded.append((2, target.inst,
                                0 if target.slot is Slot.OP0 else 1,
                                dst, sender))
        return tuple(decoded)

    def _build(self, sim, block: TripsBlock,
               placement: Placement) -> _BlockStatics:
        from repro.uarch.vectors import dispatch_offsets, initial_ready
        topology = sim.topology
        insts = list(block.instructions)
        n = len(insts)
        st = _BlockStatics()
        st.placement = placement
        st.n = n
        st.insts = insts
        st.need = [operand_count(inst.op) for inst in insts]
        st.pred_want = [None if inst.predicate is None
                        else (1 if inst.predicate == "T" else 0)
                        for inst in insts]
        kinds = []
        for inst in insts:
            op = inst.op
            if op is TOp.LOAD:
                kinds.append(_K_LOAD)
            elif op is TOp.STORE:
                kinds.append(_K_STORE)
            elif op is TOp.NULL:
                kinds.append(_K_NULL)
            elif op in _EXIT_SET:
                kinds.append(_K_EXIT)
            else:
                kinds.append(_K_COMPUTE)
        st.kinds = kinds
        st.is_mov = [inst.op is TOp.MOV and inst.op not in TEST_OPS
                     for inst in insts]
        st.latency = [TRIPS_LATENCY.get(inst.op, 1) for inst in insts]
        st.disp_off = dispatch_offsets(n, sim.config.dispatch_bandwidth)
        st.static_ready = initial_ready(
            st.need, [want is not None for want in st.pred_want])
        st.store_lsids = tuple(sorted(block.store_lsids))
        st.tiles = [placement.tiles[i] for i in range(n)]
        st.coords = [topology.et_coord(tile) for tile in st.tiles]
        # Bound send closures are only built for a non-tracing simulator
        # (per-hop events need the generic path) and only for targets
        # whose source coordinate is static — load results come back
        # from a dynamic cache bank, so loads get no senders.
        opn = sim.opn if sim.tracer is None else None
        st.has_senders = opn is not None
        cls_et_et, cls_et_rt = self._cls_from_et
        cls_rt_et, cls_rt_rt = self._cls_from_rt
        st.targets = [
            self._decode_targets(
                block, inst.targets, st.coords,
                None if kinds[i] == _K_LOAD else opn,
                st.coords[i], cls_et_et, cls_et_rt)
            for i, inst in enumerate(insts)]
        rt_coords = self._rt_coords
        st.read_plan = [
            (read.reg, bank_of(read.reg),
             self._decode_targets(block, read.targets, st.coords, opn,
                                  rt_coords[bank_of(read.reg)],
                                  cls_rt_et, cls_rt_rt))
            for read in block.reads]
        gt = self._gt_coord
        st.exit_send = [opn.sender(st.coords[i], gt, "ET-GT")
                        if opn is not None and kinds[i] == _K_EXIT
                        else None for i in range(n)]
        # Compute plan: the per-op dispatch that _compute re-derives on
        # every fire, resolved once.  Codes: 0 binop (carg = handler),
        # 1 constant (carg = value), 2 MOV passthrough, 3 I2F, 4 F2I,
        # 5 fall back to _compute for anything else.
        ccode = []
        carg: List[object] = []
        for i, inst in enumerate(insts):
            op = inst.op
            if kinds[i] != _K_COMPUTE:
                ccode.append(-1)
                carg.append(None)
            elif op is TOp.GENI:
                ccode.append(1)
                carg.append(inst.imm)
            elif op is TOp.GENF:
                ccode.append(1)
                carg.append(inst.fimm)
            elif op is TOp.MOV:
                ccode.append(2)
                carg.append(None)
            elif op is TOp.I2F:
                ccode.append(3)
                carg.append(None)
            elif op is TOp.F2I:
                ccode.append(4)
                carg.append(None)
            else:
                handler = _BINOPS.get(op)
                if handler is not None and operand_count(op) == 2:
                    ccode.append(0)
                    carg.append(handler)
                else:
                    ccode.append(5)
                    carg.append(None)
        st.ccode = ccode
        st.carg = carg
        st.load_ids = [hash((block.label, i)) & 0xFFFF
                       if kinds[i] == _K_LOAD else -1 for i in range(n)]
        st.guard = 40 * n + 1000
        et_issue = sim.et_issue
        st.issue_claim = [et_issue.resource(tile).claim
                          for tile in st.tiles]
        return st

    # -- execution --------------------------------------------------------

    def execute_block(self, sim, block: TripsBlock, placement: Placement,
                      fetch_done: int) -> Tuple[TInst, int, int]:
        if self._attached_to is not sim:
            self.attach(sim)
        st = self._statics.get(block.label)
        if st is None or st.placement is not placement:
            st = self._statics[block.label] = \
                self._build(sim, block, placement)

        config = sim.config
        stats = sim.stats
        tracer = sim.tracer
        send = sim.opn.send_cached
        lwt = sim.lwt
        regs = sim.regs
        reg_ready = sim.reg_ready
        l1d = sim.hierarchy.l1d
        l1d_access = l1d.access
        rt_read_claims = self._rt_read_claims
        rt_write_claims = self._rt_write_claims
        issue_claims = st.issue_claim
        pred_arrival = sim._predicate_arrival
        load_forwarded = sim._load_forwarded
        bank_sm = self._bank_shift_mask
        dt_coords = self._dt_coords
        gt_coord = self._gt_coord
        cls_et_et, cls_et_rt = self._cls_from_et
        cls_dt_et, cls_dt_rt = self._cls_from_dt
        cls_rt_et, cls_rt_rt = self._cls_from_rt

        block_label = block.label
        n = st.n
        insts = st.insts
        need = st.need
        pred_want = st.pred_want
        kinds = st.kinds
        is_mov = st.is_mov
        latency_of = st.latency
        disp_off = st.disp_off
        tiles = st.tiles
        coords = st.coords
        targets_of = st.targets
        store_lsids = st.store_lsids
        load_ids = st.load_ids
        ccode = st.ccode
        carg = st.carg
        exit_send = st.exit_send
        has_senders = st.has_senders
        l1d_hit = config.l1d_hit_cycles

        dispatch_base = fetch_done + config.fetch_to_dispatch_cycles
        v0s: List[object] = [_ABSENT] * n
        v1s: List[object] = [_ABSENT] * n
        arr_max = [0] * n
        pred_val: List[Optional[int]] = [None] * n
        pred_time = [0] * n
        arrived = [0] * n
        fired = [False] * n
        mispredicated = [False] * n

        ready: List[int] = []
        parked: List[int] = []
        resolved_stores: Dict[int, int] = {}
        store_addr_time: Dict[int, Tuple[int, int, int]] = {}
        store_buffer: Dict[int, Tuple[int, object, TInst]] = {}
        write_values: Dict[int, Tuple[object, int]] = {}
        write_producers: Dict[int, int] = {}
        used_feed: List[List[int]] = [[] for _ in range(n)]
        exit_taken: Optional[TInst] = None
        exit_time = 0
        load_flush_penalty = 0

        def deliver(value, when: int, decoded, producer_index: int,
                    src_coord, cls_to_et: str, cls_to_rt: str) -> None:
            """Generic delivery: source coordinate supplied per call
            (load results, tracing runs).  The per-entry sender closure
            is ignored."""
            for entry in decoded:
                tag = entry[0]
                if tag == 2:
                    _, index, tslot, dst, _snd = entry
                    if fired[index] or mispredicated[index]:
                        continue
                    arrive = send(src_coord, dst, when, cls_to_et)
                    if tslot == 0:
                        if v0s[index] is not _ABSENT:
                            continue
                        v0s[index] = value
                    else:
                        if v1s[index] is not _ABSENT:
                            continue
                        v1s[index] = value
                    if arrive > arr_max[index]:
                        arr_max[index] = arrive
                    arrived[index] += 1
                    if producer_index >= 0:
                        used_feed[index].append(producer_index)
                    check_ready(index)
                elif tag == 1:
                    _, index, dst, _snd = entry
                    if fired[index] or mispredicated[index]:
                        continue
                    arrive = send(src_coord, dst, when, cls_to_et)
                    if pred_val[index] is None:
                        actual = 1 if value and value is not NULL_TOKEN \
                            else 0
                        pred_val[index] = actual
                        pred_time[index] = pred_arrival(
                            block_label, index, actual, arrive,
                            dispatch_base + disp_off[index])
                        if producer_index >= 0:
                            used_feed[index].append(producer_index)
                        check_ready(index)
                else:
                    _, slot, bank, rt_dst, _snd = entry
                    arrive = send(src_coord, rt_dst, when, cls_to_rt)
                    port = rt_write_claims[bank](arrive)
                    write_values[slot] = (value, port)
                    if producer_index >= 0:
                        write_producers[slot] = producer_index

        def deliver_static(value, when: int, decoded,
                           producer_index: int) -> None:
            """Delivery over the pre-resolved sender closures (static
            source; tracer off).  Timing-identical to :func:`deliver` —
            the send still happens before operand dedup, because a
            duplicate operand occupies the network in the scalar kernel
            too."""
            for entry in decoded:
                tag = entry[0]
                if tag == 2:
                    _, index, tslot, _dst, snd = entry
                    if fired[index] or mispredicated[index]:
                        continue
                    arrive = snd(when)
                    if tslot == 0:
                        if v0s[index] is not _ABSENT:
                            continue
                        v0s[index] = value
                    else:
                        if v1s[index] is not _ABSENT:
                            continue
                        v1s[index] = value
                    if arrive > arr_max[index]:
                        arr_max[index] = arrive
                    arrived[index] += 1
                    if producer_index >= 0:
                        used_feed[index].append(producer_index)
                    check_ready(index)
                elif tag == 1:
                    _, index, _dst, snd = entry
                    if fired[index] or mispredicated[index]:
                        continue
                    arrive = snd(when)
                    if pred_val[index] is None:
                        actual = 1 if value and value is not NULL_TOKEN \
                            else 0
                        pred_val[index] = actual
                        pred_time[index] = pred_arrival(
                            block_label, index, actual, arrive,
                            dispatch_base + disp_off[index])
                        if producer_index >= 0:
                            used_feed[index].append(producer_index)
                        check_ready(index)
                else:
                    _, slot, bank, _dst, snd = entry
                    arrive = snd(when)
                    port = rt_write_claims[bank](arrive)
                    write_values[slot] = (value, port)
                    if producer_index >= 0:
                        write_producers[slot] = producer_index

        def check_ready(index: int) -> None:
            if fired[index] or mispredicated[index]:
                return
            if arrived[index] < need[index]:
                return
            want = pred_want[index]
            if want is not None:
                got = pred_val[index]
                if got is None:
                    return
                if got != want:
                    mispredicated[index] = True
                    if kinds[index] == _K_STORE:
                        resolved_stores[insts[index].lsid] = \
                            pred_time[index]
                        unpark()
                    return
            ready.append(index)

        def stores_resolved_below(lsid: int) -> bool:
            for s in store_lsids:
                if s >= lsid:
                    break
                if s not in resolved_stores:
                    return False
            return True

        def unpark() -> None:
            if parked:
                ready.extend(parked)
                parked.clear()

        def fire(index: int) -> None:
            nonlocal exit_taken, exit_time, load_flush_penalty
            inst = insts[index]
            fired[index] = True
            stats.executed += 1
            tile = tiles[index]
            coord = coords[index]
            t_ready = dispatch_base + disp_off[index]
            arrival = arr_max[index]
            if arrival > t_ready:
                t_ready = arrival
            if pred_want[index] is not None:
                predicated = pred_time[index]
                if predicated > t_ready:
                    t_ready = predicated
            issue = issue_claims[index](t_ready)
            done = issue + latency_of[index]
            kind = kinds[index]
            # Loads may still park below (unresolved earlier stores), so
            # their issue event is emitted after the disambiguation check.
            if tracer is not None and kind != _K_LOAD:
                tracer.emit("inst_issue", issue, label=block_label,
                            index=index, op=inst.op.value, tile=tile)

            if kind == _K_LOAD:
                address = wrap64(_as_int(v0s[index]) + inst.imm)
                if not stores_resolved_below(inst.lsid):
                    parked.append(index)
                    fired[index] = False
                    stats.executed -= 1
                    return
                stats.loads += 1
                stats.l1d_bytes += inst.width
                if tracer is not None:
                    tracer.emit("inst_issue", issue, label=block_label,
                                index=index, op=inst.op.value, tile=tile)
                if bank_sm is not None:
                    bank = (address >> bank_sm[0]) & bank_sm[1]
                else:
                    bank = l1d.bank_of(address)
                dt = dt_coords[bank]
                depart = send(coord, dt, done, "ET-DT")
                value, forwarded_from = load_forwarded(
                    address, inst, store_buffer)
                finish = l1d_access(address, depart)
                back = send(dt, coord, finish, "ET-DT")
                if forwarded_from >= 0:
                    when, _addr, _w = store_addr_time[forwarded_from]
                    if when + l1d_hit > back:
                        back = when + l1d_hit
                    static_id = load_ids[index]
                    if static_id not in lwt:
                        lwt.add(static_id)
                        stats.load_flushes += 1
                        load_flush_penalty += \
                            config.load_violation_flush_cycles
                        if tracer is not None:
                            tracer.emit(
                                "load_flush", back, label=block_label,
                                index=index,
                                penalty=config
                                .load_violation_flush_cycles)
                if tracer is not None:
                    if forwarded_from >= 0:
                        tracer.emit("load_forward", back,
                                    label=block_label, index=index,
                                    lsid=inst.lsid,
                                    supplier=forwarded_from,
                                    address=address)
                    tracer.emit("inst_retire", back, label=block_label,
                                index=index, op=inst.op.value, tile=tile)
                deliver(value, back, targets_of[index], index, dt,
                        cls_dt_et, cls_dt_rt)
                return
            if kind == _K_STORE:
                stats.stores += 1
                stats.l1d_bytes += inst.width
                address = wrap64(_as_int(v0s[index]) + inst.imm)
                value = v1s[index]
                if bank_sm is not None:
                    bank = (address >> bank_sm[0]) & bank_sm[1]
                else:
                    bank = l1d.bank_of(address)
                arrive = send(coord, dt_coords[bank], done, "ET-DT")
                l1d_access(address, arrive, is_store=True)
                finish = arrive + l1d_hit
                store_buffer[inst.lsid] = (address, value, inst)
                resolved_stores[inst.lsid] = finish
                store_addr_time[inst.lsid] = (finish, address, inst.width)
                if tracer is not None:
                    tracer.emit("inst_retire", finish, label=block_label,
                                index=index, op=inst.op.value, tile=tile)
                unpark()
                return
            if kind == _K_NULL:
                if inst.lsid >= 0:
                    resolved_stores[inst.lsid] = done
                    unpark()
                if tracer is not None:
                    tracer.emit("inst_retire", done, label=block_label,
                                index=index, op=inst.op.value, tile=tile)
                if has_senders:
                    deliver_static(NULL_TOKEN, done, targets_of[index],
                                   index)
                else:
                    deliver(NULL_TOKEN, done, targets_of[index], index,
                            coord, cls_et_et, cls_et_rt)
                return
            if kind == _K_EXIT:
                if exit_taken is not None:
                    raise TrapError(f"{block_label}: two exits fired")
                exit_taken = inst
                snd = exit_send[index]
                if snd is not None:
                    exit_time = snd(done)
                else:
                    exit_time = send(coord, gt_coord, done, "ET-GT")
                if tracer is not None:
                    tracer.emit("inst_retire", exit_time,
                                label=block_label, index=index,
                                op=inst.op.value, tile=tile)
                return
            if is_mov[index]:
                stats.moves += 1
            code = ccode[index]
            if code == 0:
                a = v0s[index]
                b = v1s[index]
                value = NULL_TOKEN \
                    if a is NULL_TOKEN or b is NULL_TOKEN \
                    else carg[index](a, b)
            elif code == 1:
                value = carg[index]
            elif code == 2:
                value = v0s[index]
            elif code == 3:
                value = float(_as_int(v0s[index]))
            elif code == 4:
                value = wrap64(int(v0s[index]))
            else:
                slots: Dict[Slot, object] = {}
                operand = v0s[index]
                if operand is not _ABSENT:
                    slots[_SLOT_OP0] = operand
                operand = v1s[index]
                if operand is not _ABSENT:
                    slots[_SLOT_OP1] = operand
                value = _compute(inst.op, inst, slots)
            if tracer is not None:
                tracer.emit("inst_retire", done, label=block_label,
                            index=index, op=inst.op.value, tile=tile)
            if has_senders:
                deliver_static(value, done, targets_of[index], index)
            else:
                deliver(value, done, targets_of[index], index, coord,
                        cls_et_et, cls_et_rt)

        # Register reads: RT bank ports, then routed to consumers.
        rt_coords = self._rt_coords
        for reg, bank, decoded in st.read_plan:
            pending = reg_ready[reg]
            if pending < dispatch_base:
                pending = dispatch_base
            when = rt_read_claims[bank](pending)
            if has_senders:
                deliver_static(regs[reg], when, decoded, -1)
            else:
                deliver(regs[reg], when, decoded, -1, rt_coords[bank],
                        cls_rt_et, cls_rt_rt)

        # Zero-operand, unpredicated instructions become ready *after*
        # the read deliveries: the worklist is a LIFO, so seeding order
        # is part of the timing contract with the scalar kernel.
        ready.extend(st.static_ready)

        guard = 0
        guard_limit = st.guard
        pop = ready.pop
        while ready:
            index = pop()
            if fired[index] or mispredicated[index]:
                continue
            guard += 1
            if guard > guard_limit:
                raise TrapError(f"{block_label}: execution livelock")
            fire(index)

        done_time = exit_time
        for slot, write in enumerate(block.writes):
            if slot not in write_values:
                raise TrapError(f"{block_label}: write w{slot} missing")
            value, when = write_values[slot]
            if value is not NULL_TOKEN:
                regs[write.reg] = value
            reg_ready[write.reg] = when
            if when > done_time:
                done_time = when
        for lsid in store_lsids:
            if lsid not in resolved_stores:
                raise TrapError(f"{block_label}: store {lsid} unresolved")
            resolved = resolved_stores[lsid]
            if resolved > done_time:
                done_time = resolved
        # Commit buffered stores to memory in load/store-ID order — the
        # LSQ's sequential-memory-semantics guarantee.
        for lsid in sorted(store_buffer):
            address, value, inst = store_buffer[lsid]
            sim._store_value(address, value, inst)
        if exit_taken is None:
            raise TrapError(f"{block_label}: no exit fired")
        done_time += load_flush_penalty

        sim._account(block, _FiredView(fired), used_feed,
                     write_producers, n)
        stats.blocks_committed += 1
        stats.fetched += n
        residency = done_time - dispatch_base
        if residency < 1:
            residency = 1
        stats.window_inst_cycles += residency * n
        stats.window_useful_cycles += residency * sim._last_useful
        return exit_taken, exit_time, done_time


KERNELS.register("batched", lambda config=None: BatchedKernel(config))

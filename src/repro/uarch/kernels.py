"""Execution-kernel backends for the cycle simulator.

A kernel owns the simulator's hot inner loop: one block activation's
dataflow wake-up, operand routing, memory access, and commit
bookkeeping (see :class:`repro.uarch.components.ExecutionKernel`).
:class:`ScalarKernel` is the reference backend — the original
closure-based event-driven loop, moved here verbatim from
``CycleSimulator._execute_block`` so alternate backends (a vectorized
wavefront scheduler, ROADMAP item 1) can be dropped in behind the same
seam and checked bit-for-bit against it.

Kernels are *performance* variants only: every backend must produce
identical results and statistics for the same configuration.  The
``repro perf`` suite benchmarks them against each other
(``repro perf run --kernel-backend NAME``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.interp import TrapError
from repro.ir.types import wrap64

from repro.isa.asm import is_write_target, write_slot_of
from repro.isa.block import TripsBlock
from repro.isa.instructions import (
    Slot, TEST_OPS, TInst, TOp, TRIPS_LATENCY, operand_count,
)
from repro.trips.functional import NULL_TOKEN, _as_int, _compute
from repro.trips.placement import Placement
from repro.trips.regalloc import bank_of

from repro.uarch.components import ExecutionKernel, KERNELS

_EXIT_SET = frozenset({TOp.BRO, TOp.CALLO, TOp.RET})


class _TimedBlock:
    """Per-activation dataflow state with timestamps."""

    __slots__ = ("values", "times", "pred_val", "pred_time", "arrived",
                 "fired", "mispredicated")

    def __init__(self, n: int) -> None:
        self.values: List[Dict[Slot, object]] = [None] * n
        self.times: List[Dict[Slot, int]] = [None] * n
        self.pred_val: List[object] = [None] * n
        self.pred_time: List[int] = [0] * n
        self.arrived = [0] * n
        self.fired = [False] * n
        self.mispredicated = [False] * n


class ScalarKernel(ExecutionKernel):
    """The reference event-driven scalar backend.

    One Python-level event per operand delivery and per instruction
    fire, with dataflow state held in per-activation lists.  This is
    the original simulator inner loop — the correctness baseline all
    other backends are differenced against.
    """

    name = "scalar"

    def __init__(self, config=None) -> None:
        self.config = config

    def execute_block(self, sim, block: TripsBlock, placement: Placement,
                      fetch_done: int) -> Tuple[TInst, int, int]:
        config = sim.config
        stats = sim.stats
        tracer = sim.tracer
        topology = sim.topology
        block_label = block.label
        n = len(block.instructions)
        state = _TimedBlock(n)
        dispatch_base = fetch_done + config.fetch_to_dispatch_cycles
        dispatch = [dispatch_base + i // config.dispatch_bandwidth
                    for i in range(n)]

        need = [operand_count(i.op) for i in block.instructions]
        preds = [i.predicate for i in block.instructions]
        ready: List[int] = []
        parked: List[int] = []
        resolved_stores: Dict[int, int] = {}      # lsid -> resolve time
        store_addr_time: Dict[int, Tuple[int, int, int]] = {}
        store_buffer: Dict[int, Tuple[int, object, TInst]] = {}
        store_lsids = sorted(block.store_lsids)
        write_values: Dict[int, Tuple[object, int]] = {}
        write_producers: Dict[int, int] = {}
        used_feed: List[List[int]] = [[] for _ in range(n)]
        exit_taken: Optional[TInst] = None
        exit_time = 0
        load_flush_penalty = 0

        def tile_of(index: int):
            return topology.et_coord(placement.tiles[index])

        def deliver(value, when: int, targets, producer_index: int,
                    src_coord) -> None:
            nonlocal exit_taken, exit_time
            for target in targets:
                if is_write_target(target):
                    slot = write_slot_of(target)
                    write = block.writes[slot]
                    bank = bank_of(write.reg)
                    arrive = sim.opn.send(src_coord, topology.rt_coord(bank),
                                          when,
                                          sim._class_of(src_coord, "rt"))
                    port = sim.rt_write_ports.claim(bank, arrive)
                    write_values[slot] = (value, port)
                    if producer_index >= 0:
                        write_producers[slot] = producer_index
                    continue
                index = target.inst
                if state.fired[index] or state.mispredicated[index]:
                    continue
                dst = tile_of(index)
                arrive = sim.opn.send(src_coord, dst, when,
                                      sim._class_of(src_coord, "et"))
                if target.slot is Slot.PRED:
                    if state.pred_val[index] is None:
                        actual = 1 if value and value is not NULL_TOKEN else 0
                        state.pred_val[index] = actual
                        state.pred_time[index] = sim._predicate_arrival(
                            block.label, index, actual, arrive,
                            dispatch[index])
                        if producer_index >= 0:
                            used_feed[index].append(producer_index)
                        check_ready(index)
                    continue
                slots = state.values[index]
                if slots is None:
                    slots = state.values[index] = {}
                    state.times[index] = {}
                if target.slot in slots:
                    continue
                slots[target.slot] = value
                state.times[index][target.slot] = arrive
                state.arrived[index] += 1
                if producer_index >= 0:
                    used_feed[index].append(producer_index)
                check_ready(index)

        def check_ready(index: int) -> None:
            if state.fired[index] or state.mispredicated[index]:
                return
            if state.arrived[index] < need[index]:
                return
            predicate = preds[index]
            if predicate is not None:
                arrived = state.pred_val[index]
                if arrived is None:
                    return
                wanted = 1 if predicate == "T" else 0
                if arrived != wanted:
                    state.mispredicated[index] = True
                    inst = block.instructions[index]
                    if inst.op is TOp.STORE:
                        resolved_stores[inst.lsid] = state.pred_time[index]
                        unpark()
                    return
            ready.append(index)

        def stores_resolved_below(lsid: int) -> Tuple[bool, int]:
            latest = 0
            for s in store_lsids:
                if s >= lsid:
                    break
                if s not in resolved_stores:
                    return False, 0
                latest = max(latest, resolved_stores[s])
            return True, latest

        def unpark() -> None:
            if parked:
                ready.extend(parked)
                parked.clear()

        def ready_time(index: int) -> int:
            times = state.times[index] or {}
            t = dispatch[index]
            for slot_time in times.values():
                t = max(t, slot_time)
            if preds[index] is not None:
                t = max(t, state.pred_time[index])
            return t

        def fire(index: int) -> None:
            nonlocal exit_taken, exit_time, load_flush_penalty
            inst = block.instructions[index]
            state.fired[index] = True
            stats.executed += 1
            tile = placement.tiles[index]
            coord = topology.et_coord(tile)
            t_ready = ready_time(index)
            issue = sim.et_issue.claim(tile, t_ready)
            latency = TRIPS_LATENCY.get(inst.op, 1)
            done = issue + latency
            slots = state.values[index] or {}
            op = inst.op
            # Loads may still park below (unresolved earlier stores), so
            # their issue event is emitted after the disambiguation check.
            if tracer is not None and op is not TOp.LOAD:
                tracer.emit("inst_issue", issue, label=block_label,
                            index=index, op=op.value, tile=tile)

            if op is TOp.LOAD:
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                ok, barrier = stores_resolved_below(inst.lsid)
                if not ok:
                    # The LSQ cannot disambiguate against unresolved
                    # earlier stores: hold the load until their addresses
                    # are known (a conservative LSQ; the dependence
                    # predictor below charges flushes when a load's data
                    # actually came from an in-flight store).
                    parked.append(index)
                    state.fired[index] = False
                    stats.executed -= 1
                    return
                stats.loads += 1
                stats.l1d_bytes += inst.width
                if tracer is not None:
                    tracer.emit("inst_issue", issue, label=block_label,
                                index=index, op=op.value, tile=tile)
                bank = sim.hierarchy.l1d.bank_of(address)
                depart = sim.opn.send(coord, topology.dt_coord(bank), done,
                                      "ET-DT")
                value, forwarded_from = sim._load_forwarded(
                    address, inst, store_buffer)
                finish = sim.hierarchy.l1d.access(address, depart)
                back = sim.opn.send(topology.dt_coord(bank), coord, finish,
                                    "ET-DT")
                if forwarded_from >= 0:
                    # The load consumed an in-flight store's data: had it
                    # issued speculatively it would have flushed.  Train
                    # the load-wait table; charge a flush the first time.
                    when, _addr, _w = store_addr_time[forwarded_from]
                    back = max(back, when + sim.config.l1d_hit_cycles)
                    static_id = hash((block.label, index)) & 0xFFFF
                    if static_id not in sim.lwt:
                        sim.lwt.add(static_id)
                        stats.load_flushes += 1
                        load_flush_penalty += \
                            sim.config.load_violation_flush_cycles
                        if tracer is not None:
                            tracer.emit(
                                "load_flush", back, label=block_label,
                                index=index,
                                penalty=sim.config
                                .load_violation_flush_cycles)
                if tracer is not None:
                    if forwarded_from >= 0:
                        tracer.emit("load_forward", back, label=block_label,
                                    index=index, lsid=inst.lsid,
                                    supplier=forwarded_from,
                                    address=address)
                    tracer.emit("inst_retire", back, label=block_label,
                                index=index, op=op.value, tile=tile)
                deliver(value, back, inst.targets, index,
                        topology.dt_coord(bank))
                return
            if op is TOp.STORE:
                stats.stores += 1
                stats.l1d_bytes += inst.width
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                value = slots[Slot.OP1]
                bank = sim.hierarchy.l1d.bank_of(address)
                arrive = sim.opn.send(coord, topology.dt_coord(bank), done,
                                      "ET-DT")
                # The store enters the DT's write buffer on arrival; a
                # miss is absorbed there and written back off the critical
                # path.  The bank's timing state still advances.
                sim.hierarchy.l1d.access(address, arrive, is_store=True)
                finish = arrive + sim.config.l1d_hit_cycles
                store_buffer[inst.lsid] = (address, value, inst)
                resolved_stores[inst.lsid] = finish
                store_addr_time[inst.lsid] = (finish, address, inst.width)
                if tracer is not None:
                    tracer.emit("inst_retire", finish, label=block_label,
                                index=index, op=op.value, tile=tile)
                unpark()
                return
            if op is TOp.NULL:
                if inst.lsid >= 0:
                    resolved_stores[inst.lsid] = done
                    unpark()
                if tracer is not None:
                    tracer.emit("inst_retire", done, label=block_label,
                                index=index, op=op.value, tile=tile)
                deliver(NULL_TOKEN, done, inst.targets, index, coord)
                return
            if op in _EXIT_SET:
                if exit_taken is not None:
                    raise TrapError(f"{block.label}: two exits fired")
                exit_taken = inst
                exit_time = sim.opn.send(coord, topology.gt_coord, done,
                                         "ET-GT")
                if tracer is not None:
                    tracer.emit("inst_retire", exit_time, label=block_label,
                                index=index, op=op.value, tile=tile)
                return
            if op in TEST_OPS:
                pass
            elif op is TOp.MOV:
                stats.moves += 1
            value = _compute(op, inst, slots)
            if tracer is not None:
                tracer.emit("inst_retire", done, label=block_label,
                            index=index, op=op.value, tile=tile)
            deliver(value, done, inst.targets, index, coord)

        # Register reads: RT bank ports, then routed to consumers.
        for read in block.reads:
            bank = bank_of(read.reg)
            when = sim.rt_read_ports.claim(
                bank, max(dispatch_base, sim.reg_ready[read.reg]))
            deliver(sim.regs[read.reg], when, read.targets, -1,
                    topology.rt_coord(bank))

        for index in range(n):
            if need[index] == 0 and preds[index] is None:
                ready.append(index)

        guard = 0
        while ready:
            index = ready.pop()
            if state.fired[index] or state.mispredicated[index]:
                continue
            guard += 1
            if guard > 40 * n + 1000:
                raise TrapError(f"{block.label}: execution livelock")
            fire(index)

        done_time = exit_time
        for slot, write in enumerate(block.writes):
            if slot not in write_values:
                raise TrapError(f"{block.label}: write w{slot} missing")
            value, when = write_values[slot]
            if value is not NULL_TOKEN:
                sim.regs[write.reg] = value
            sim.reg_ready[write.reg] = when
            done_time = max(done_time, when)
        for lsid in store_lsids:
            if lsid not in resolved_stores:
                raise TrapError(f"{block.label}: store {lsid} unresolved")
            done_time = max(done_time, resolved_stores[lsid])
        # Commit buffered stores to memory in load/store-ID order — the
        # LSQ's sequential-memory-semantics guarantee.
        for lsid in sorted(store_buffer):
            address, value, inst = store_buffer[lsid]
            sim._store_value(address, value, inst)
        if exit_taken is None:
            raise TrapError(f"{block.label}: no exit fired")
        done_time += load_flush_penalty

        # Statistics: composition and usage closure.
        sim._account(block, state, used_feed, write_producers, n)
        stats.blocks_committed += 1
        stats.fetched += n
        residency = max(1, done_time - dispatch_base)
        stats.window_inst_cycles += residency * n
        useful_count = sim._last_useful
        stats.window_useful_cycles += residency * useful_count
        return exit_taken, exit_time, done_time


KERNELS.register("scalar", lambda config=None: ScalarKernel(config))

"""Operand network (OPN) timing model.

The OPN is a 5x5 wormhole-routed mesh delivering one 64-bit operand per
link per cycle [Gratz et al.].  The node map mirrors the prototype
floorplan:

* column 0 holds the global tile (0,0) and the four data tiles (0,1..4),
* row 0 holds the four register tiles (1..4,0),
* the 4x4 execution array occupies (1..4, 1..4).

Packets are single-operand (one flit) and use dimension-order (Y then X)
routing.  Contention is modeled per link: a link carries one operand per
cycle; packets arriving at a busy link queue behind it.  The model keeps
the per-class hop histogram (ET-ET, ET-DT, ET-RT, ET-GT, DT-RT) that
Figure 8 of the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Coord = Tuple[int, int]


def et_coord(tile: int, grid: int = 4) -> Coord:
    """Mesh coordinate of an execution tile on a ``grid`` x ``grid`` array
    (4 in the prototype; 2/8 in composable configurations)."""
    return (tile % grid + 1, tile // grid + 1)


def dt_coord(bank: int) -> Coord:
    """Mesh coordinate of data tile (cache bank) 0..3."""
    return (0, bank + 1)


def rt_coord(bank: int) -> Coord:
    """Mesh coordinate of register tile (bank) 0..3."""
    return (bank + 1, 0)


GT_COORD: Coord = (0, 0)


def route(src: Coord, dst: Coord) -> List[Tuple[Coord, Coord]]:
    """Dimension-order (Y-then-X) route as a list of directed links."""
    links = []
    x, y = src
    while y != dst[1]:
        step = 1 if dst[1] > y else -1
        links.append(((x, y), (x, y + step)))
        y += step
    while x != dst[0]:
        step = 1 if dst[0] > x else -1
        links.append(((x, y), (x + step, y)))
        x += step
    return links


def hop_count(src: Coord, dst: Coord) -> int:
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


@dataclass
class OpnStats:
    """Traffic statistics by class, for the Figure 8 profile.

    ``classes`` and ``hop_buckets`` come from the topology carrying the
    traffic (see :class:`repro.uarch.components.OpnTopology`), so a new
    topology's classes and hop range are reported instead of the
    prototype mesh's hardcoded list — packets of a class the paper
    never named are still counted, never dropped.
    """

    packets: Dict[str, int] = field(default_factory=dict)
    hops: Dict[str, int] = field(default_factory=dict)
    hop_histogram: Dict[Tuple[str, int], int] = field(default_factory=dict)
    queue_cycles: int = 0
    #: Traffic classes declared by the topology (observed classes are
    #: reported too — the union, via :meth:`known_classes`).
    classes: Tuple[str, ...] = ()
    #: Final histogram bucket; hop counts beyond it clamp into it (the
    #: prototype mesh uses 5, i.e. the paper's "5+" bucket).
    hop_buckets: int = 5

    def record(self, klass: str, hops: int, queued: int) -> None:
        """Account one delivered operand.

        ``klass`` is the traffic class (``ET-ET``, ``ET-DT``, ...);
        ``hops`` is the number of mesh *links traversed* (0 for a
        same-tile bypass); ``queued`` is the total *cycles* the operand
        spent waiting behind busy links along its route.
        """
        self.packets[klass] = self.packets.get(klass, 0) + 1
        self.hops[klass] = self.hops.get(klass, 0) + hops
        key = (klass, min(hops, self.hop_buckets))
        self.hop_histogram[key] = self.hop_histogram.get(key, 0) + 1
        self.queue_cycles += queued

    def average_hops(self, klass: Optional[str] = None) -> float:
        """Mean links traversed per packet, over all traffic or one
        class; ``0.0`` on an empty run (never a ZeroDivisionError)."""
        if klass is None:
            total_packets = sum(self.packets.values())
            total_hops = sum(self.hops.values())
        else:
            total_packets = self.packets.get(klass, 0)
            total_hops = self.hops.get(klass, 0)
        return total_hops / total_packets if total_packets else 0.0

    def known_classes(self) -> Tuple[str, ...]:
        """Declared classes plus any observed ones not declared, in
        declaration order then alphabetically — reporting never loses a
        class just because a topology forgot to declare it."""
        known = list(self.classes)
        for klass in sorted(self.packets):
            if klass not in known:
                known.append(klass)
        return tuple(known)

    def class_histogram(self, klass: str) -> Dict[int, float]:
        """Hop-count distribution (fractions, keys 0..hop_buckets) for
        one traffic class.  A class with no recorded packets yields
        all-zero fractions rather than dividing by zero."""
        total = self.packets.get(klass, 0)
        return {h: (self.hop_histogram.get((klass, h), 0) / total
                    if total else 0.0)
                for h in range(self.hop_buckets + 1)}

    def histograms(self) -> Dict[str, Dict[int, float]]:
        """Per-class hop distributions for every known class."""
        return {klass: self.class_histogram(klass)
                for klass in self.known_classes()}


class OperandNetwork:
    """Link-contention timing model of the operand network.

    Routing, traffic classes, and link width come from the configured
    :class:`~repro.uarch.components.OpnTopology`; the default is the
    prototype's 5x5 mesh, which makes this model (and its resource-pool
    keys) identical to the pre-registry network.
    """

    def __init__(self, hop_cycles: int = 1, tracer=None,
                 topology=None) -> None:
        from repro.uarch.resources import ResourcePool
        if topology is None:
            from repro.uarch.topologies import MeshTopology
            topology = MeshTopology()
        self.topology = topology
        self.hop_cycles = hop_cycles
        self.links = ResourcePool()
        self.stats = OpnStats(classes=topology.traffic_classes,
                              hop_buckets=topology.hop_buckets)
        # (src, dst) -> ((link, resource), ...): materialized routes for
        # the cached fast path (see send_cached).  Built lazily, so it
        # always captures resources from the *current* links pool — the
        # batched kernel swaps the pool before the first packet flows.
        self._route_cache: Dict[Tuple[Coord, Coord], tuple] = {}
        #: Optional :class:`repro.trace.Tracer`; ``None`` (the default)
        #: skips all event construction.
        self.tracer = tracer

    def _claim_link(self, link, time: int) -> int:
        """Reserve the earliest slot on the best channel of ``link``.

        Single-channel links keep the bare link tuple as the pool key
        (bit-identical with the pre-registry network); wider links probe
        every channel and take the earliest free slot, ties to the
        lowest channel index (deterministic).
        """
        channels = self.topology.link_channels
        if channels == 1:
            return self.links.claim(link, time)
        best_channel = 0
        best_start = self.links.probe((link, 0), time)
        for channel in range(1, channels):
            start = self.links.probe((link, channel), time)
            if start < best_start:
                best_channel, best_start = channel, start
        return self.links.claim((link, best_channel), time)

    def send(self, src: Coord, dst: Coord, ready: int, klass: str) -> int:
        """Deliver one operand; returns its arrival time.

        ``ready`` is the cycle the operand leaves the source.  A local
        bypass (src == dst) is free, matching the prototype's same-tile
        forwarding.
        """
        if src == dst:
            self.stats.record(klass, 0, 0)
            return ready
        time = ready
        queued = 0
        hops = 0
        tracer = self.tracer
        for link in self.topology.route(src, dst):
            start = self._claim_link(link, time)
            if tracer is not None:
                (sx, sy), (dx, dy) = link
                tracer.emit("opn_hop", start, klass=klass, sx=sx, sy=sy,
                            dx=dx, dy=dy, wait=start - time)
            queued += start - time
            time = start + self.hop_cycles
            hops += 1
        self.stats.record(klass, hops, queued)
        return time

    def send_cached(self, src: Coord, dst: Coord, ready: int,
                    klass: str) -> int:
        """:meth:`send` with the route and its link resources cached.

        Timing-identical to :meth:`send` (same claims in the same
        order, same statistics, same ``opn_hop`` emissions) but the
        dimension-order route is materialized once per (src, dst) pair
        as a tuple of ``(link, resource)`` entries, so the steady state
        skips route recomputation, per-hop pool lookups, and the
        statistics call.  Used by the batched kernel; multi-channel
        topologies fall back to :meth:`send` because channel choice
        depends on dynamic occupancy.
        """
        stats = self.stats
        if src == dst:
            stats.packets[klass] = stats.packets.get(klass, 0) + 1
            stats.hops[klass] = stats.hops.get(klass, 0) + 0
            key = (klass, 0)
            histogram = stats.hop_histogram
            histogram[key] = histogram.get(key, 0) + 1
            return ready
        cached = self._route_cache.get((src, dst))
        if cached is None:
            if self.topology.link_channels != 1:
                return self.send(src, dst, ready, klass)
            cached = self._route_cache[(src, dst)] = tuple(
                (link, self.links.resource(link))
                for link in self.topology.route(src, dst))
        time = ready
        queued = 0
        tracer = self.tracer
        hop_cycles = self.hop_cycles
        for link, resource in cached:
            start = resource.claim(time)
            if tracer is not None:
                (sx, sy), (dx, dy) = link
                tracer.emit("opn_hop", start, klass=klass, sx=sx, sy=sy,
                            dx=dx, dy=dy, wait=start - time)
            queued += start - time
            time = start + hop_cycles
        hops = len(cached)
        stats.packets[klass] = stats.packets.get(klass, 0) + 1
        stats.hops[klass] = stats.hops.get(klass, 0) + hops
        key = (klass, hops if hops < stats.hop_buckets else stats.hop_buckets)
        histogram = stats.hop_histogram
        histogram[key] = histogram.get(key, 0) + 1
        stats.queue_cycles += queued
        return time

    def sender(self, src: Coord, dst: Coord, klass: str):
        """A bound ``ready -> arrival`` closure for one fixed packet shape.

        The fastest delivery path: the route, its link resources, the
        hop count, and the histogram key are all resolved at creation,
        so each call is just the per-link claims plus the statistics
        increments — timing- and statistics-identical to :meth:`send`.
        Statistics keys are created on first *use*, not creation, so a
        sender that never fires leaves no zero entries behind.

        Only valid while ``self.tracer is None`` (there is no per-hop
        event emission); callers with a tracer must use :meth:`send` or
        :meth:`send_cached`.
        """
        stats = self.stats
        packets = stats.packets
        total_hops = stats.hops
        histogram = stats.hop_histogram
        if src == dst:
            histkey = (klass, 0)

            def send_local(ready: int) -> int:
                packets[klass] = packets.get(klass, 0) + 1
                total_hops[klass] = total_hops.get(klass, 0)
                histogram[histkey] = histogram.get(histkey, 0) + 1
                return ready

            return send_local
        if self.topology.link_channels != 1:
            def send_multi(ready: int) -> int:
                return self.send(src, dst, ready, klass)

            return send_multi
        claims = tuple(self.links.resource(link).claim
                       for link in self.topology.route(src, dst))
        hops = len(claims)
        histkey = (klass,
                   hops if hops < stats.hop_buckets else stats.hop_buckets)
        hop_cycles = self.hop_cycles

        def send_fast(ready: int) -> int:
            time = ready
            queued = 0
            for claim in claims:
                start = claim(time)
                queued += start - time
                time = start + hop_cycles
            packets[klass] = packets.get(klass, 0) + 1
            total_hops[klass] = total_hops.get(klass, 0) + hops
            histogram[histkey] = histogram.get(histkey, 0) + 1
            stats.queue_cycles += queued
            return time

        return send_fast

"""Idealized EDGE machine for the ILP limit study (Figure 10).

The paper's ideal machine has perfect next-block prediction, perfect
predication, perfect caches, infinite execution resources, and zero-cycle
inter-tile delays; only two costs remain:

* a per-block dispatch/fetch cost (8 cycles in the TRIPS-like
  configuration, 0 in the upper-bound configuration), and
* a finite instruction window (1K like the prototype, or 128K).

Memory disambiguation is perfect: a load depends only on its address
operand and the *actual* latest store to the same location.  The model
executes the program functionally while computing, per instruction, the
dataflow-critical-path time, then schedules blocks under the dispatch and
window constraints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.interp import Memory, TrapError
from repro.ir.types import wrap64

from repro.isa.asm import is_write_target, write_slot_of
from repro.isa.block import TripsProgram
from repro.isa.instructions import Slot, TInst, TOp, TRIPS_LATENCY, operand_count

from repro.trips.functional import NULL_TOKEN, _as_int, _compute
from repro.uarch.core import _buffered_load

_EXIT_SET = frozenset({TOp.BRO, TOp.CALLO, TOp.RET})

#: Load-use latency under perfect caching.
PERFECT_LOAD_CYCLES = 1


@dataclass
class IdealStats:
    cycles: int = 0
    executed: int = 0
    blocks: int = 0

    @property
    def ipc(self) -> float:
        return self.executed / self.cycles if self.cycles else 0.0


class IdealSimulator:
    """Dataflow-limit executor with a window and a dispatch cost."""

    def __init__(self, program: TripsProgram, window: int = 1024,
                 dispatch_cost: int = 8,
                 memory_size: int = 16 * 1024 * 1024,
                 max_blocks: int = 2_000_000) -> None:
        from repro.uarch.config import ConfigError
        if not isinstance(window, int) or isinstance(window, bool) \
                or window < 1:
            raise ConfigError(
                f"ideal window must be an int >= 1, got {window!r}")
        if not isinstance(dispatch_cost, int) \
                or isinstance(dispatch_cost, bool) or dispatch_cost < 0:
            raise ConfigError(
                f"ideal dispatch_cost must be an int >= 0, got "
                f"{dispatch_cost!r}")
        self.program = program
        self.window = window
        self.dispatch_cost = dispatch_cost
        self.memory = Memory(memory_size)
        self.stats = IdealStats()
        self.max_blocks = max_blocks
        self.regs: List[object] = [0] * 128
        self.reg_time: List[int] = [0] * 128
        self.store_time: Dict[int, int] = {}   # address -> availability
        for address, payload in program.globals_image:
            self.memory.write_bytes(address, payload)

    def run(self, entry: str = "main",
            args: Optional[List[object]] = None):
        self.regs[1] = self.memory.size - 64
        for i, arg in enumerate(args or []):
            self.regs[3 + i] = arg

        func_name = entry
        label = self.program.function(entry).entry
        call_stack: List[Tuple[str, str]] = []
        in_flight: deque = deque()    # (completion time, size)
        in_flight_insts = 0
        start = 0

        while True:
            if self.stats.blocks >= self.max_blocks:
                raise TrapError("ideal simulation exceeded block budget")
            block = self.program.function(func_name).blocks[label]
            size = len(block.instructions)

            # Window constraint: pop completed blocks; if the window is
            # still full, wait for the oldest to finish.
            while in_flight and in_flight_insts + size > self.window:
                completion, old_size = in_flight.popleft()
                in_flight_insts -= old_size
                start = max(start, completion)

            exit_inst, completion = self._execute_block(block, start)
            in_flight.append((completion, size))
            in_flight_insts += size
            self.stats.blocks += 1
            self.stats.cycles = max(self.stats.cycles, completion)
            start = start + self.dispatch_cost

            op = exit_inst.op
            if op is TOp.BRO:
                label = exit_inst.label
            elif op is TOp.CALLO:
                call_stack.append((func_name, exit_inst.cont))
                func_name = exit_inst.label
                label = self.program.function(func_name).entry
            else:
                if not call_stack:
                    return self.regs[3]
                func_name, label = call_stack.pop()

    def _execute_block(self, block, start: int) -> Tuple[TInst, int]:
        n = len(block.instructions)
        need = [operand_count(i.op) for i in block.instructions]
        preds = [i.predicate for i in block.instructions]
        values: List[Optional[Dict[Slot, object]]] = [None] * n
        times: List[Optional[Dict[Slot, int]]] = [None] * n
        pred_val: List[object] = [None] * n
        pred_time = [0] * n
        arrived = [0] * n
        fired = [False] * n
        mispredicated = [False] * n
        parked: List[int] = []
        resolved_stores: Dict[int, int] = {}
        store_buffer: Dict[int, Tuple[int, object, TInst]] = {}
        store_lsids = sorted(block.store_lsids)
        write_values: Dict[int, Tuple[object, int]] = {}
        exit_taken: Optional[TInst] = None
        exit_time = start
        ready: List[int] = []

        def deliver(value, when, targets) -> None:
            nonlocal exit_taken, exit_time
            for target in targets:
                if is_write_target(target):
                    write_values[write_slot_of(target)] = (value, when)
                    continue
                index = target.inst
                if fired[index] or mispredicated[index]:
                    continue
                if target.slot is Slot.PRED:
                    if pred_val[index] is None:
                        pred_val[index] = (
                            1 if value and value is not NULL_TOKEN else 0)
                        pred_time[index] = when
                        check_ready(index)
                    continue
                slots = values[index]
                if slots is None:
                    slots = values[index] = {}
                    times[index] = {}
                if target.slot in slots:
                    continue
                slots[target.slot] = value
                times[index][target.slot] = when
                arrived[index] += 1
                check_ready(index)

        def check_ready(index: int) -> None:
            if fired[index] or mispredicated[index]:
                return
            if arrived[index] < need[index]:
                return
            predicate = preds[index]
            if predicate is not None:
                got = pred_val[index]
                if got is None:
                    return
                wanted = 1 if predicate == "T" else 0
                if got != wanted:
                    mispredicated[index] = True
                    inst = block.instructions[index]
                    if inst.op is TOp.STORE:
                        resolved_stores[inst.lsid] = pred_time[index]
                        unpark()
                    return
            ready.append(index)

        def stores_resolved_below(lsid: int) -> bool:
            for s in store_lsids:
                if s >= lsid:
                    return True
                if s not in resolved_stores:
                    return False
            return True

        def unpark() -> None:
            if parked:
                ready.extend(parked)
                parked.clear()

        def fire(index: int) -> None:
            nonlocal exit_taken, exit_time
            inst = block.instructions[index]
            slots = values[index] or {}
            when = start
            for t in (times[index] or {}).values():
                when = max(when, t)
            if preds[index] is not None:
                when = max(when, pred_time[index])
            op = inst.op
            latency = TRIPS_LATENCY.get(op, 1)
            fired[index] = True
            self.stats.executed += 1

            if op is TOp.LOAD:
                if not stores_resolved_below(inst.lsid):
                    fired[index] = False
                    self.stats.executed -= 1
                    parked.append(index)
                    return
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                value = _buffered_load(self.memory, address, inst,
                                       store_buffer)
                # Perfect disambiguation: wait only for the true producer.
                when = max(when, self.store_time.get(
                    address // 8 * 8, start))
                deliver(value, when + PERFECT_LOAD_CYCLES,
                        inst.targets)
                return
            if op is TOp.STORE:
                address = wrap64(_as_int(slots[Slot.OP0]) + inst.imm)
                store_buffer[inst.lsid] = (address, slots[Slot.OP1], inst)
                done = when + 1
                self.store_time[address // 8 * 8] = done
                resolved_stores[inst.lsid] = done
                unpark()
                return
            if op is TOp.NULL:
                if inst.lsid >= 0:
                    resolved_stores[inst.lsid] = when
                    unpark()
                deliver(NULL_TOKEN, when, inst.targets)
                return
            if op in _EXIT_SET:
                if exit_taken is None:
                    exit_taken = inst
                    exit_time = when
                return
            value = _compute(op, inst, slots)
            deliver(value, when + latency, inst.targets)

        for read in block.reads:
            when = max(start, self.reg_time[read.reg])
            deliver(self.regs[read.reg], when, read.targets)
        for index in range(n):
            if need[index] == 0 and preds[index] is None:
                ready.append(index)

        guard = 0
        while ready:
            index = ready.pop()
            if fired[index] or mispredicated[index]:
                continue
            guard += 1
            if guard > 40 * n + 1000:
                raise TrapError(f"{block.label}: ideal livelock")
            fire(index)

        completion = exit_time
        for slot, write in enumerate(block.writes):
            if slot not in write_values:
                raise TrapError(f"{block.label}: write w{slot} missing")
            value, when = write_values[slot]
            if value is not NULL_TOKEN:
                self.regs[write.reg] = value
            self.reg_time[write.reg] = when
            completion = max(completion, when)
        for lsid in store_lsids:
            completion = max(completion, resolved_stores[lsid])
        for lsid in sorted(store_buffer):
            address, value, inst = store_buffer[lsid]
            self._store_value(address, value, inst)
        if exit_taken is None:
            raise TrapError(f"{block.label}: no exit fired")
        return exit_taken, completion

    def _load_value(self, address: int, inst: TInst):
        if inst.is_float:
            return self.memory.load_float(address)
        return self.memory.load_int(address, inst.width, inst.signed)

    def _store_value(self, address: int, value, inst: TInst) -> None:
        if isinstance(value, float):
            self.memory.store_float(address, value)
        else:
            self.memory.store_int(address, inst.width, _as_int(value))


def run_ideal(program: TripsProgram, entry: str = "main",
              args: Optional[List[object]] = None, window: int = 1024,
              dispatch_cost: int = 8,
              memory_size: int = 16 * 1024 * 1024):
    """One-shot convenience: returns (result, simulator)."""
    simulator = IdealSimulator(program, window, dispatch_cost, memory_size)
    result = simulator.run(entry, args)
    return result, simulator

"""Cache and memory-hierarchy timing models.

Provides a generic set-associative LRU cache and the TRIPS hierarchy:
address-interleaved single-ported L1 data banks, a banked L1 instruction
cache, a static-NUCA L2 whose latency grows with bank distance, and a DDR
memory model with fixed latency plus per-access occupancy (bandwidth).

All components are *timing* models: they answer "when is this access
done" and keep hit/miss statistics; data contents live in the functional
memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.uarch.components import MEMORIES, MemoryHierarchyABC
from repro.uarch.config import TripsConfig


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with LRU replacement (tags only)."""

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int) -> None:
        if size_bytes % (line_bytes * assoc) != 0:
            raise ValueError("cache geometry does not divide evenly")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (line_bytes * assoc)
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch the line holding ``address``; returns hit?"""
        line = address // self.line_bytes
        index = line % self.num_sets
        ways = self.sets[index]
        self.stats.accesses += 1
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        self.stats.misses += 1
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def warm(self, address: int) -> None:
        """Install a line without counting statistics (prefetch/fill)."""
        line = address // self.line_bytes
        index = line % self.num_sets
        ways = self.sets[index]
        if line in ways:
            ways.remove(line)
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)


class DramModel:
    """Fixed-latency DRAM with a bandwidth bound.

    Each access occupies the channel for ``occupancy`` cycles; an access
    arriving while the channel is busy queues behind it.  Two independent
    channels model the prototype's dual DDR controllers.
    """

    def __init__(self, latency: int, occupancy: int, channels: int = 2) -> None:
        from repro.uarch.resources import ResourcePool
        self.latency = latency
        self.occupancy = occupancy
        self.channels = channels
        self._ports = ResourcePool()
        self.accesses = 0

    def access(self, address: int, now: int) -> int:
        """Returns the completion time of a DRAM access issued at ``now``."""
        self.accesses += 1
        channel = (address >> 12) % self.channels
        start = now
        for beat in range(self.occupancy):
            start = self._ports.claim(channel, start)
        return start + self.latency


class NucaL2:
    """Sixteen-bank static NUCA L2: latency = base + distance penalty."""

    def __init__(self, config: TripsConfig, dram: DramModel,
                 tracer=None) -> None:
        from repro.uarch.resources import ResourcePool
        self.config = config
        self.dram = dram
        self.banks = [SetAssociativeCache(config.l2_bank_bytes,
                                          config.l2_line_bytes,
                                          config.l2_assoc)
                      for _ in range(config.l2_banks)]
        self._ports = ResourcePool()
        self.tracer = tracer

    def bank_of(self, address: int) -> int:
        return (address // self.config.l2_line_bytes) % self.config.l2_banks

    def access(self, address: int, now: int) -> int:
        """Completion time of an L2 access issued at ``now``."""
        bank_index = self.bank_of(address)
        bank = self.banks[bank_index]
        distance = bank_index % 4 + bank_index // 4  # position in 4x4 array
        start = self._ports.claim(bank_index, now)
        latency = self.config.l2_base_cycles \
            + distance * self.config.l2_hop_cycles
        if bank.access(address):
            return start + latency
        if self.tracer is not None:
            self.tracer.emit("cache_miss", start, level="l2",
                             address=address)
        done = self.dram.access(address, start + latency)
        return done + latency  # line returns through the same bank


class L1DataBanks:
    """Four single-ported, address-interleaved 8 KB L1 data banks."""

    def __init__(self, config: TripsConfig, l2: NucaL2,
                 tracer=None) -> None:
        from repro.uarch.resources import ResourcePool
        self.config = config
        self.l2 = l2
        self.banks = [SetAssociativeCache(config.l1d_bank_bytes,
                                          config.l1d_line_bytes,
                                          config.l1d_assoc)
                      for _ in range(config.l1d_banks)]
        self._ports = ResourcePool()
        self.stats = CacheStats()
        self.tracer = tracer

    def bank_of(self, address: int) -> int:
        return (address // self.config.l1d_line_bytes) % self.config.l1d_banks

    def access(self, address: int, now: int, is_store: bool = False) -> int:
        """Completion time of a load/store issued to its bank at ``now``.

        Single-ported banks serialize accesses (the Figure 8 bandwidth
        experiment saturates at 4 ops/cycle only with perfect interleave).
        """
        bank_index = self.bank_of(address)
        bank = self.banks[bank_index]
        start = self._ports.claim(bank_index, now)
        tracer = self.tracer
        if tracer is not None and start > now:
            tracer.emit("bank_conflict", start, bank=bank_index,
                        wait=start - now)
        self.stats.accesses += 1
        if bank.access(address):
            return start + self.config.l1d_hit_cycles
        self.stats.misses += 1
        if tracer is not None:
            tracer.emit("cache_miss", start, level="l1d", address=address)
        return self.l2.access(address, start + self.config.l1d_hit_cycles)


class L1InstructionCache:
    """Banked L1 instruction cache holding block chunks.

    Tracked at 128-byte chunk granularity; a block of N instructions
    occupies ceil(N/32) chunks plus one header chunk, mirroring the
    compressed-block encoding of Section 4.4.
    """

    def __init__(self, config: TripsConfig, l2: NucaL2,
                 tracer=None) -> None:
        self.config = config
        self.l2 = l2
        self.cache = SetAssociativeCache(config.l1i_bytes,
                                         config.l1i_line_bytes,
                                         config.l1i_assoc)
        self.stats = CacheStats()
        self.tracer = tracer
        self._block_base: Dict[str, int] = {}
        self._next_base = 1 << 30   # synthetic code address space

    def block_address(self, label: str, chunks: int) -> int:
        base = self._block_base.get(label)
        if base is None:
            base = self._next_base
            self._block_base[label] = base
            self._next_base += chunks * self.config.l1i_line_bytes
        return base

    def fetch_block(self, label: str, chunks: int, now: int) -> Tuple[int, bool]:
        """Fetch all chunks of a block; returns (done time, missed?)."""
        base = self.block_address(label, chunks)
        done = now
        missed = False
        for chunk in range(chunks):
            address = base + chunk * self.config.l1i_line_bytes
            self.stats.accesses += 1
            if self.cache.access(address):
                done = max(done, now + self.config.l1i_hit_cycles)
            else:
                self.stats.misses += 1
                missed = True
                if self.tracer is not None:
                    self.tracer.emit("cache_miss", now, level="l1i",
                                     address=address)
                done = max(done, self.l2.access(address, now))
        return done, missed


class MemoryHierarchy(MemoryHierarchyABC):
    """The full TRIPS memory system wired together."""

    def __init__(self, config: TripsConfig, tracer=None) -> None:
        self.config = config
        self.dram = DramModel(config.dram_cycles, config.dram_occupancy_cycles)
        self.l2 = NucaL2(config, self.dram, tracer=tracer)
        self.l1d = L1DataBanks(config, self.l2, tracer=tracer)
        self.l1i = L1InstructionCache(config, self.l2, tracer=tracer)


class _PerfectL1DataBanks(L1DataBanks):
    """L1 data banks that always hit.

    Port arbitration (single-ported banks) is preserved — the limit
    study isolates *miss* latency from *bandwidth*, so bank conflicts
    still queue.
    """

    def access(self, address: int, now: int, is_store: bool = False) -> int:
        bank_index = self.bank_of(address)
        start = self._ports.claim(bank_index, now)
        self.stats.accesses += 1
        return start + self.config.l1d_hit_cycles


class _PerfectL1InstructionCache(L1InstructionCache):
    """L1 instruction cache that always hits (fetch never stalls on L2)."""

    def fetch_block(self, label: str, chunks: int, now: int) -> Tuple[int, bool]:
        self.stats.accesses += chunks
        return now + self.config.l1i_hit_cycles, False


class PerfectL1Hierarchy(MemoryHierarchy):
    """The TRIPS hierarchy with ideal (always-hit) L1 caches.

    A limit study: how much of the cycle count is L1 misses?  The L2
    and DRAM models stay wired up (stores and the L2's own statistics
    remain meaningful) but no L1 access ever reaches them.
    """

    def __init__(self, config: TripsConfig, tracer=None) -> None:
        super().__init__(config, tracer=tracer)
        self.l1d = _PerfectL1DataBanks(config, self.l2, tracer=tracer)
        self.l1i = _PerfectL1InstructionCache(config, self.l2, tracer=tracer)


MEMORIES.register(
    "trips", lambda config, tracer=None: MemoryHierarchy(
        config, tracer=tracer))
MEMORIES.register(
    "perfect-l1", lambda config, tracer=None: PerfectL1Hierarchy(
        config, tracer=tracer))

"""repro — a Python reproduction of "An Evaluation of the TRIPS Computer
System" (Gebhart et al., ASPLOS 2009).

The package implements, from scratch, every system the paper's evaluation
rests on:

* a machine-independent compiler IR with optimizer (:mod:`repro.ir`,
  :mod:`repro.opt`),
* the TRIPS EDGE ISA with its block constraints, assembler, and encoding
  model (:mod:`repro.isa`),
* the TRIPS compiler backend — hyperblock formation, predication,
  dataflow conversion, register allocation, spatial placement — and a
  functional simulator (:mod:`repro.trips`),
* the tiled TRIPS microarchitecture at cycle level — operand network,
  banked caches, next-block predictors, load/store queue — plus the ideal
  EDGE machine of the limit study (:mod:`repro.uarch`),
* a RISC ("PowerPC") substrate and parameterized out-of-order models of
  the Core 2 / Pentium 4 / Pentium III reference platforms
  (:mod:`repro.risc`, :mod:`repro.refmodels`),
* the benchmark suites of Table 2 (:mod:`repro.bench`) and one experiment
  driver per table/figure (:mod:`repro.eval`).

Quickstart::

    from repro.bench import get
    from repro.eval import SHARED_RUNNER

    stats = SHARED_RUNNER.trips_functional("vadd")
    cycles, sim = SHARED_RUNNER.trips_cycles("vadd")
    print(stats.fetched / stats.blocks_committed, cycles.ipc)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""TRIPS EDGE instruction definitions.

A TRIPS block contains up to 128 *compute* instructions plus header-resident
read and write instructions.  Compute instructions are dataflow: instead of
register operands they encode up to two *targets* — (instruction, operand
slot) pairs to which the result is delivered.  Values enter a block through
read instructions and leave through write instructions and stores.

Operand slots:

* ``OP0``/``OP1`` — left/right data operands;
* ``PRED`` — the predicate operand of a predicated instruction.

Predication: an instruction with ``predicate`` "T" ("F") executes only when
it receives a predicate operand with value true (false); otherwise it is
*mispredicated* — fetched but never executed, one of the overhead classes
Figure 3 and Figure 4 of the paper break out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class TOp(enum.Enum):
    """TRIPS compute opcodes."""

    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SRA = "sra"
    # Tests (produce a predicate/boolean).
    TEQ = "teq"
    TNE = "tne"
    TLT = "tlt"
    TLE = "tle"
    TGT = "tgt"
    TGE = "tge"
    TLTU = "tltu"
    TGEU = "tgeu"
    # Float.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    TFEQ = "tfeq"
    TFLT = "tflt"
    TFLE = "tfle"
    I2F = "i2f"
    F2I = "f2i"
    # Immediate generation and operand fanout.
    GENI = "geni"      # materialize an integer immediate
    GENF = "genf"      # materialize a float immediate
    MOV = "mov"        # replicate an operand (fanout tree node)
    # Memory (carry a load/store ID for sequential memory semantics).
    LOAD = "load"
    STORE = "store"
    NULL = "null"      # produce a null token (satisfies a predicated output)
    # Block exits.
    BRO = "bro"        # branch to block (offset/label form)
    CALLO = "callo"    # call: branch-and-link to a function
    RET = "ret"        # return to caller's continuation block


class Slot(enum.Enum):
    """Operand slot of a target."""

    OP0 = 0
    OP1 = 1
    PRED = 2

    def __str__(self) -> str:
        return ("op0", "op1", "p")[self.value]


@dataclass(frozen=True)
class Target:
    """Destination of a produced operand: instruction index + slot."""

    inst: int
    slot: Slot

    def __str__(self) -> str:
        return f"i{self.inst}.{self.slot}"


#: Maximum data targets a compute/read instruction may encode.
MAX_TARGETS = 2

#: Tests (predicate producers).
TEST_OPS = frozenset({
    TOp.TEQ, TOp.TNE, TOp.TLT, TOp.TLE, TOp.TGT, TOp.TGE, TOp.TLTU,
    TOp.TGEU, TOp.TFEQ, TOp.TFLT, TOp.TFLE,
})

#: Exit (control-flow) opcodes.
EXIT_OPS = frozenset({TOp.BRO, TOp.CALLO, TOp.RET})

#: Arithmetic opcodes (for Figure 3 composition accounting).
ARITH_OPS = frozenset({
    TOp.ADD, TOp.SUB, TOp.MUL, TOp.DIV, TOp.REM, TOp.AND, TOp.OR, TOp.XOR,
    TOp.SHL, TOp.SHR, TOp.SRA, TOp.FADD, TOp.FSUB, TOp.FMUL, TOp.FDIV,
    TOp.I2F, TOp.F2I, TOp.GENI, TOp.GENF,
})

#: Memory opcodes.
MEM_OPS = frozenset({TOp.LOAD, TOp.STORE})


def operand_count(op: TOp) -> int:
    """Number of *data* operands the opcode consumes before it can fire."""
    if op in (TOp.GENI, TOp.GENF, TOp.NULL, TOp.RET):
        return 0
    if op in (TOp.MOV, TOp.I2F, TOp.F2I, TOp.LOAD, TOp.BRO, TOp.CALLO):
        # LOAD consumes an address; BRO/CALLO consume nothing unless the
        # target is computed (we use label targets, so zero); MOV forwards
        # one value.
        return 1 if op in (TOp.MOV, TOp.I2F, TOp.F2I, TOp.LOAD) else 0
    if op is TOp.STORE:
        return 2  # address (OP0) and value (OP1)
    return 2


#: Execution latency in cycles (shared with the cycle-level model).
TRIPS_LATENCY = {
    TOp.MUL: 3, TOp.DIV: 24, TOp.REM: 24,
    TOp.FADD: 4, TOp.FSUB: 4, TOp.FMUL: 4, TOp.FDIV: 24,
    TOp.I2F: 2, TOp.F2I: 2,
}


@dataclass
class TInst:
    """One TRIPS compute instruction.

    Attributes:
        index: Position within the block's instruction array (0..127).
        op: Opcode.
        targets: Up to :data:`MAX_TARGETS` destinations for the result.
        predicate: None (unpredicated), "T", or "F".
        imm: Immediate for GENI; byte displacement for LOAD/STORE.
        fimm: Immediate for GENF.
        lsid: Load/store ID for memory ops and NULLs covering them
            (sequential memory semantics within the block).
        width/signed: Access size attributes for LOAD/STORE.
        label: Exit target (block label) for BRO; callee for CALLO.
        cont: For CALLO: label of the block execution resumes at after the
            callee returns (the call's continuation).
        write_id: For NULL covering a register write: the write index.
    """

    index: int
    op: TOp
    targets: List[Target] = field(default_factory=list)
    predicate: Optional[str] = None
    imm: int = 0
    fimm: float = 0.0
    lsid: int = -1
    width: int = 8
    signed: bool = True
    is_float: bool = False   # LOAD: value is an IEEE double
    label: str = ""
    cont: str = ""
    write_id: int = -1

    def __post_init__(self) -> None:
        if len(self.targets) > MAX_TARGETS:
            raise ValueError(
                f"i{self.index}: {len(self.targets)} targets exceeds "
                f"the {MAX_TARGETS}-target ISA limit")
        if self.predicate not in (None, "T", "F"):
            raise ValueError(f"bad predicate {self.predicate!r}")

    @property
    def is_exit(self) -> bool:
        return self.op in EXIT_OPS

    @property
    def is_test(self) -> bool:
        return self.op in TEST_OPS

    @property
    def category(self) -> str:
        """Figure 3 composition category."""
        if self.op in MEM_OPS or self.op is TOp.NULL:
            return "memory"
        if self.op in EXIT_OPS:
            return "control"
        if self.op in TEST_OPS:
            return "test"
        if self.op is TOp.MOV:
            return "move"
        return "arith"

    def __str__(self) -> str:
        parts = [f"i{self.index}:"]
        if self.predicate:
            parts.append(f"<{self.predicate}>")
        parts.append(self.op.value)
        if self.op is TOp.GENI:
            parts.append(str(self.imm))
        if self.op is TOp.GENF:
            parts.append(str(self.fimm))
        if self.op in (TOp.LOAD, TOp.STORE):
            parts.append(f"[lsid={self.lsid} w={self.width} d={self.imm}]")
        if self.op is TOp.NULL and self.lsid >= 0:
            parts.append(f"[lsid={self.lsid}]")
        if self.op is TOp.NULL and self.write_id >= 0:
            parts.append(f"[w={self.write_id}]")
        if self.label:
            parts.append(f"@{self.label}")
        if self.targets:
            parts.append("-> " + " ".join(str(t) for t in self.targets))
        return " ".join(parts)


@dataclass
class ReadInst:
    """Header-resident register read: injects a register into the dataflow."""

    index: int              # read slot 0..31
    reg: int                # architectural register 0..127
    targets: List[Target] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.targets) > MAX_TARGETS:
            raise ValueError(
                f"r{self.index}: {len(self.targets)} targets exceeds "
                f"the {MAX_TARGETS}-target limit on reads")

    def __str__(self) -> str:
        targets = " ".join(str(t) for t in self.targets)
        return f"r{self.index}: read G{self.reg} -> {targets}"


@dataclass
class WriteInst:
    """Header-resident register write: a named block output."""

    index: int              # write slot 0..31
    reg: int                # architectural register 0..127

    def __str__(self) -> str:
        return f"w{self.index}: write G{self.reg}"

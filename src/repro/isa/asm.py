"""Text assembler / disassembler for TRIPS blocks.

The format is a stable, line-oriented rendition used by tests, examples,
and hand-written kernels.  One block::

    block vadd_body
      r0: read G3 -> i0.op0
      i0: load lsid=0 w=8 d=0 -> i2.op0
      i1: geni 8 -> i2.op1
      i2: add -> i3.op0 w0
      i3: tlt -> i4.p
      i4: <T> bro @vadd_body
      i5: <F> bro @vadd_done
      w0: write G3
    end

Targets may be ``i<k>.op0 | i<k>.op1 | i<k>.p`` or ``w<k>`` (shorthand for
"this value feeds write slot k", resolved to the write's value channel).
``parse_block``/``format_block`` round-trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.isa.block import TripsBlock
from repro.isa.instructions import ReadInst, Slot, Target, TInst, TOp, WriteInst


class AsmError(Exception):
    """Malformed TRIPS assembly text."""


_SLOT_NAMES = {"op0": Slot.OP0, "op1": Slot.OP1, "p": Slot.PRED}
_TARGET_RE = re.compile(r"^i(\d+)\.(op0|op1|p)$")
_WRITE_TARGET_RE = re.compile(r"^w(\d+)$")
_READ_RE = re.compile(r"^r(\d+):\s+read\s+G(\d+)(?:\s+->\s+(.*))?$")
_WRITE_RE = re.compile(r"^w(\d+):\s+write\s+G(\d+)$")
_INST_RE = re.compile(
    r"^i(\d+):\s+(?:<([TF])>\s+)?(\w+)"
    r"((?:\s+[^\s>]+)*?)(?:\s+->\s+(.*))?$")


def format_block(block: TripsBlock) -> str:
    """Render a block in canonical assembly text."""
    lines = [f"block {block.label}"]
    write_channel = _write_channels(block)
    for read in block.reads:
        targets = " ".join(_format_target(t, write_channel) for t in read.targets)
        suffix = f" -> {targets}" if targets else ""
        lines.append(f"  r{read.index}: read G{read.reg}{suffix}")
    for inst in block.instructions:
        lines.append("  " + _format_inst(inst, write_channel))
    for write in block.writes:
        lines.append(f"  w{write.index}: write G{write.reg}")
    lines.append("end")
    return "\n".join(lines)


def _write_channels(block: TripsBlock) -> Dict[Tuple[int, Slot], int]:
    """Map (instruction index, slot) -> write slot for write-value channels.

    Write instructions live in the header; producers target them through a
    per-write channel.  Internally we encode "feeds write k" as a target to
    a pseudo-slot; the assembler renders it as ``wk``.
    """
    return {}


def _format_target(target: Target, write_channel) -> str:
    if target.inst >= WRITE_CHANNEL_BASE:
        return f"w{target.inst - WRITE_CHANNEL_BASE}"
    return f"i{target.inst}.{target.slot}"


#: Target indices at or above this base denote write channels (write slot =
#: index - base).  Keeps Target a simple value type while letting producers
#: name register writes directly.
WRITE_CHANNEL_BASE = 1 << 16


def write_target(write_slot: int) -> Target:
    """Build a target that delivers a value to write slot ``write_slot``."""
    return Target(WRITE_CHANNEL_BASE + write_slot, Slot.OP0)


def is_write_target(target: Target) -> bool:
    return target.inst >= WRITE_CHANNEL_BASE


def write_slot_of(target: Target) -> int:
    return target.inst - WRITE_CHANNEL_BASE


def _format_inst(inst: TInst, write_channel) -> str:
    parts = [f"i{inst.index}:"]
    if inst.predicate:
        parts.append(f"<{inst.predicate}>")
    parts.append(inst.op.value)
    if inst.op is TOp.GENI:
        parts.append(str(inst.imm))
    elif inst.op is TOp.GENF:
        parts.append(repr(inst.fimm))
    elif inst.op in (TOp.LOAD, TOp.STORE):
        parts.append(f"lsid={inst.lsid}")
        parts.append(f"w={inst.width}")
        parts.append(f"d={inst.imm}")
        if not inst.signed:
            parts.append("u")
    elif inst.op is TOp.NULL:
        if inst.lsid >= 0:
            parts.append(f"lsid={inst.lsid}")
        if inst.write_id >= 0:
            parts.append(f"wid={inst.write_id}")
    if inst.label:
        parts.append(f"@{inst.label}")
    if inst.cont:
        parts.append(f"c={inst.cont}")
    if inst.targets:
        parts.append("-> " + " ".join(
            _format_target(t, write_channel) for t in inst.targets))
    return " ".join(parts)


def parse_block(text: str) -> TripsBlock:
    """Parse canonical assembly text into a block (inverse of format)."""
    lines = [line.strip() for line in text.strip().splitlines()
             if line.strip() and not line.strip().startswith("#")]
    if not lines or not lines[0].startswith("block "):
        raise AsmError("expected 'block <label>' on the first line")
    if lines[-1] != "end":
        raise AsmError("expected 'end' on the last line")
    block = TripsBlock(label=lines[0].split(None, 1)[1].strip())

    for line in lines[1:-1]:
        if line.startswith("r"):
            match = _READ_RE.match(line)
            if match:
                index, reg, targets = match.groups()
                block.reads.append(ReadInst(
                    int(index), int(reg), _parse_targets(targets)))
                continue
        if line.startswith("w"):
            match = _WRITE_RE.match(line)
            if match:
                index, reg = match.groups()
                block.writes.append(WriteInst(int(index), int(reg)))
                continue
        match = _INST_RE.match(line)
        if not match:
            raise AsmError(f"cannot parse line: {line!r}")
        block.instructions.append(_parse_inst(match))
    return block


def _parse_targets(text) -> List[Target]:
    targets: List[Target] = []
    for token in (text or "").split():
        match = _TARGET_RE.match(token)
        if match:
            targets.append(Target(int(match.group(1)),
                                  _SLOT_NAMES[match.group(2)]))
            continue
        match = _WRITE_TARGET_RE.match(token)
        if match:
            targets.append(write_target(int(match.group(1))))
            continue
        raise AsmError(f"bad target {token!r}")
    return targets


def _parse_inst(match) -> TInst:
    index, predicate, opname, attrs, targets = match.groups()
    try:
        op = TOp(opname)
    except ValueError:
        raise AsmError(f"unknown opcode {opname!r}") from None
    inst = TInst(int(index), op, _parse_targets(targets),
                 predicate=predicate)
    for token in (attrs or "").split():
        if token.startswith("@"):
            inst.label = token[1:]
        elif token.startswith("c="):
            inst.cont = token[2:]
        elif token.startswith("lsid="):
            inst.lsid = int(token[5:])
        elif token.startswith("wid="):
            inst.write_id = int(token[4:])
        elif token.startswith("w="):
            inst.width = int(token[2:])
        elif token.startswith("d="):
            inst.imm = int(token[2:])
        elif token == "u":
            inst.signed = False
        elif op is TOp.GENI:
            inst.imm = int(token)
        elif op is TOp.GENF:
            inst.fimm = float(token)
        else:
            raise AsmError(f"unexpected attribute {token!r} on {opname}")
    return inst


# ---------------------------------------------------------------------------
# Program-level assembly: multiple functions of blocks.
# ---------------------------------------------------------------------------

def format_program(program) -> str:
    """Render a whole TripsProgram as assembly text (round-trips through
    :func:`parse_program`, minus the global data image)."""
    parts = []
    for func in program.functions.values():
        parts.append(f"func @{func.name} entry={func.entry} "
                     f"params={func.num_params}")
        for block in func.blocks.values():
            parts.append(format_block(block))
        parts.append("endfunc")
    return "\n\n".join(parts)


def parse_program(text: str):
    """Parse program-level assembly into a TripsProgram.

    Grammar::

        func @<name> entry=<label> [params=<n>]
        block <label>
          ...
        end
        ...
        endfunc

    Blank lines and ``#`` comments are ignored.  The program is validated
    before being returned.
    """
    from repro.isa.block import TripsFunction, TripsProgram

    program = TripsProgram()
    current: TripsFunction = None
    block_lines = []
    in_block = False

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("func @"):
            if current is not None:
                raise AsmError("nested func")
            header = line[6:].split()
            name = header[0]
            entry = ""
            num_params = 0
            for token in header[1:]:
                if token.startswith("entry="):
                    entry = token[6:]
                elif token.startswith("params="):
                    num_params = int(token[7:])
                else:
                    raise AsmError(f"bad func attribute {token!r}")
            current = TripsFunction(name, num_params=num_params)
            current._wanted_entry = entry
            continue
        if line == "endfunc":
            if current is None:
                raise AsmError("endfunc outside func")
            if in_block:
                raise AsmError("endfunc inside block")
            wanted = getattr(current, "_wanted_entry", "")
            if wanted:
                if wanted not in current.blocks:
                    raise AsmError(f"entry block {wanted!r} not defined")
                current.entry = wanted
            program.functions[current.name] = current
            current = None
            continue
        if line.startswith("block "):
            if current is None:
                raise AsmError("block outside func")
            in_block = True
            block_lines = [line]
            continue
        if line == "end":
            if not in_block:
                raise AsmError("end outside block")
            block_lines.append(line)
            current.add_block(parse_block("\n".join(block_lines)))
            in_block = False
            continue
        if in_block:
            block_lines.append(line)
            continue
        raise AsmError(f"unexpected line outside block: {line!r}")

    if current is not None:
        raise AsmError("missing endfunc")
    program.validate()
    return program

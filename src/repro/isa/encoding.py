"""Binary size model for the TRIPS ISA (Section 4.4 of the paper).

Per-block encoding:

* a 128-bit chunk header,
* 32 read instructions x 22 bits and 32 write instructions x 6 bits
  (together with the chunk header: the 128-byte "block header" the paper
  calls too large),
* 128 x 32-bit compute instructions, NOP-padded.

The prototype *compresses* underfull blocks in memory and the L2/I-cache to
32/64/96/128-instruction chunks, which reduces the paper's measured code
expansion over PowerPC from ~6x to ~4x.  Both figures are produced by this
model: :func:`block_bytes` with ``compressed=False`` or ``True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.isa.block import TripsBlock, TripsProgram

#: Bits in the fixed chunk header.
HEADER_BITS = 128
#: Bits per header-resident read instruction (32 encoded regardless of use).
READ_BITS = 22
#: Bits per header-resident write instruction.
WRITE_BITS = 6
#: Bits per compute instruction.
INST_BITS = 32
#: Compression quantum: blocks round up to a multiple of this many
#: instructions (32, 64, 96, or 128).
CHUNK_INSTS = 32

#: Full block header size in bytes: 128-bit header + 32 reads + 32 writes.
HEADER_BYTES = (HEADER_BITS + 32 * READ_BITS + 32 * WRITE_BITS) // 8


def body_instruction_slots(block: TripsBlock, compressed: bool) -> int:
    """Number of encoded instruction slots (including pad NOPs)."""
    count = max(len(block.instructions), 1)
    if not compressed:
        return 128
    chunks = (count + CHUNK_INSTS - 1) // CHUNK_INSTS
    return chunks * CHUNK_INSTS


def block_bytes(block: TripsBlock, compressed: bool = True) -> int:
    """Encoded size of one block in bytes."""
    return HEADER_BYTES + body_instruction_slots(block, compressed) * (INST_BITS // 8)


def block_nops(block: TripsBlock, compressed: bool = True) -> int:
    """Pad NOPs the encoder must insert for this block."""
    return body_instruction_slots(block, compressed) - len(block.instructions)


@dataclass
class CodeSizeReport:
    """Static and dynamic code-size accounting for a TRIPS program."""

    static_bytes_raw: int = 0
    static_bytes_compressed: int = 0
    static_blocks: int = 0
    static_instructions: int = 0
    dynamic_bytes_raw: int = 0
    dynamic_bytes_compressed: int = 0
    dynamic_unique_instructions: int = 0


def static_code_size(program: TripsProgram) -> CodeSizeReport:
    report = CodeSizeReport()
    for block in program.all_blocks():
        report.static_blocks += 1
        report.static_instructions += len(block.instructions)
        report.static_bytes_raw += block_bytes(block, compressed=False)
        report.static_bytes_compressed += block_bytes(block, compressed=True)
    return report


def dynamic_code_size(program: TripsProgram,
                      fetched_block_labels: Iterable[str]) -> CodeSizeReport:
    """Code-size over the *touched* footprint of one execution.

    ``fetched_block_labels`` is the set (or any iterable; duplicates are
    ignored) of block labels the run fetched — the analogue of the paper's
    "unique instructions fetched during execution".
    """
    wanted = set(fetched_block_labels)
    by_label: Dict[str, TripsBlock] = {}
    for block in program.all_blocks():
        by_label[block.label] = block
    report = static_code_size(program)
    for label in wanted:
        block = by_label[label]
        report.dynamic_bytes_raw += block_bytes(block, compressed=False)
        report.dynamic_bytes_compressed += block_bytes(block, compressed=True)
        report.dynamic_unique_instructions += len(block.instructions)
    return report

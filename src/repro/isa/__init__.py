"""TRIPS EDGE ISA: instructions, blocks, assembler, encoding model."""

from repro.isa.asm import (
    AsmError, format_block, format_program, is_write_target, parse_block,
    parse_program, write_slot_of, write_target,
)
from repro.isa.block import (
    MAX_BLOCK_INSTS, MAX_EXITS, MAX_LSIDS, MAX_READS, MAX_WRITES,
    BlockConstraintError, TripsBlock, TripsFunction, TripsProgram,
)
from repro.isa.encoding import (
    HEADER_BYTES, CodeSizeReport, block_bytes, block_nops,
    dynamic_code_size, static_code_size,
)
from repro.isa.instructions import (
    ARITH_OPS, EXIT_OPS, MAX_TARGETS, MEM_OPS, TEST_OPS, TRIPS_LATENCY,
    ReadInst, Slot, Target, TInst, TOp, WriteInst, operand_count,
)

__all__ = [
    "ARITH_OPS",
    "AsmError",
    "BlockConstraintError",
    "CodeSizeReport",
    "EXIT_OPS",
    "HEADER_BYTES",
    "MAX_BLOCK_INSTS",
    "MAX_EXITS",
    "MAX_LSIDS",
    "MAX_READS",
    "MAX_TARGETS",
    "MAX_WRITES",
    "MEM_OPS",
    "ReadInst",
    "Slot",
    "TEST_OPS",
    "TInst",
    "TOp",
    "TRIPS_LATENCY",
    "Target",
    "TripsBlock",
    "TripsFunction",
    "TripsProgram",
    "WriteInst",
    "block_bytes",
    "block_nops",
    "dynamic_code_size",
    "format_block",
    "format_program",
    "is_write_target",
    "operand_count",
    "parse_block",
    "parse_program",
    "static_code_size",
    "write_slot_of",
    "write_target",
]

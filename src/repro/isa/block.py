"""TRIPS blocks, functions, and programs, with prototype constraints.

The TRIPS prototype fixes, per block:

* at most 128 compute instructions,
* at most 32 register reads and 32 register writes (header-resident),
* at most 32 load/store IDs,
* at most 8 exits,
* all block outputs (register writes, store IDs, exactly one exit) must be
  produced on every executed path — predicated writers must be paired with
  alternates or NULLs.

:meth:`TripsBlock.validate` enforces the structural constraints; the
output-completeness rule is dynamic and checked by the functional simulator
(a block that deadlocks waiting for an output is a backend bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.isa.instructions import (
    EXIT_OPS, MAX_TARGETS, ReadInst, Slot, Target, TInst, TOp, WriteInst,
)

MAX_BLOCK_INSTS = 128
MAX_READS = 32
MAX_WRITES = 32
MAX_LSIDS = 32
MAX_EXITS = 8


class BlockConstraintError(Exception):
    """A block violates a TRIPS prototype constraint."""


@dataclass
class TripsBlock:
    """One EDGE block: header reads/writes plus the dataflow body."""

    label: str
    instructions: List[TInst] = field(default_factory=list)
    reads: List[ReadInst] = field(default_factory=list)
    writes: List[WriteInst] = field(default_factory=list)

    # -- derived views ------------------------------------------------------

    @property
    def exits(self) -> List[TInst]:
        return [i for i in self.instructions if i.is_exit]

    @property
    def store_lsids(self) -> Set[int]:
        return {i.lsid for i in self.instructions if i.op is TOp.STORE}

    @property
    def lsids(self) -> Set[int]:
        return {i.lsid for i in self.instructions
                if i.op in (TOp.LOAD, TOp.STORE)}

    def successor_labels(self) -> List[str]:
        """Block labels control may continue at within this function."""
        labels = [i.label for i in self.exits if i.op is TOp.BRO]
        labels.extend(i.cont for i in self.exits
                      if i.op is TOp.CALLO and i.cont)
        return labels

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        if len(self.instructions) > MAX_BLOCK_INSTS:
            raise BlockConstraintError(
                f"{self.label}: {len(self.instructions)} instructions "
                f"exceed the {MAX_BLOCK_INSTS}-instruction block limit")
        if len(self.reads) > MAX_READS:
            raise BlockConstraintError(
                f"{self.label}: {len(self.reads)} reads exceed {MAX_READS}")
        if len(self.writes) > MAX_WRITES:
            raise BlockConstraintError(
                f"{self.label}: {len(self.writes)} writes exceed {MAX_WRITES}")
        if len(self.lsids) > MAX_LSIDS:
            raise BlockConstraintError(
                f"{self.label}: {len(self.lsids)} load/store IDs "
                f"exceed {MAX_LSIDS}")
        if len(self.exits) > MAX_EXITS:
            raise BlockConstraintError(
                f"{self.label}: {len(self.exits)} exits exceed {MAX_EXITS}")
        if not self.exits:
            raise BlockConstraintError(f"{self.label}: block has no exit")
        self._validate_indices()
        self._validate_targets()
        self._validate_register_slots()

    def _validate_indices(self) -> None:
        for position, inst in enumerate(self.instructions):
            if inst.index != position:
                raise BlockConstraintError(
                    f"{self.label}: instruction at position {position} "
                    f"has index {inst.index}")

    def _validate_targets(self) -> None:
        # Imported here to avoid a cycle: asm defines the write-channel
        # target encoding shared by all block producers.
        from repro.isa.asm import WRITE_CHANNEL_BASE, is_write_target

        count = len(self.instructions)
        # Slot -> producer ids: instruction index, or -1 for header reads.
        filled: Dict[Tuple[int, Slot], List[int]] = {}
        write_producers: Dict[int, List[int]] = {}
        for producer_id, inst in self._producers():
            for target in inst.targets:
                if is_write_target(target):
                    slot = target.inst - WRITE_CHANNEL_BASE
                    if not 0 <= slot < len(self.writes):
                        raise BlockConstraintError(
                            f"{self.label}: write target w{slot} out of range")
                    write_producers.setdefault(slot, []).append(producer_id)
                    continue
                if not 0 <= target.inst < count:
                    raise BlockConstraintError(
                        f"{self.label}: target {target} out of range")
                consumer = self.instructions[target.inst]
                if target.slot is Slot.PRED and consumer.predicate is None:
                    raise BlockConstraintError(
                        f"{self.label}: predicate delivered to "
                        f"unpredicated i{target.inst}")
                key = (target.inst, target.slot)
                filled.setdefault(key, []).append(producer_id)

        gated = self._gated_instructions(filled)

        def all_gated(producer_ids: List[int]) -> bool:
            return all(p >= 0 and p in gated for p in producer_ids)

        for (index, slot), producer_ids in filled.items():
            # Multiple producers for one slot are legal only when each is
            # *gated* — predicated, or a forwarding chain originating at a
            # predicated instruction — so that dynamically at most one
            # fires (the dataflow merge idiom).
            if len(producer_ids) > 1 and not all_gated(producer_ids):
                raise BlockConstraintError(
                    f"{self.label}: operand i{index}.{slot} has "
                    f"{len(producer_ids)} producers, not all gated")
        for slot in range(len(self.writes)):
            arrivals = write_producers.get(slot, [])
            if not arrivals:
                raise BlockConstraintError(
                    f"{self.label}: write w{slot} has no producer")
            if len(arrivals) > 1 and not all_gated(arrivals):
                raise BlockConstraintError(
                    f"{self.label}: write w{slot} has conflicting producers")

    def _producers(self):
        """(id, producer) pairs: instructions by index, reads as -1."""
        for inst in self.instructions:
            yield inst.index, inst
        for read in self.reads:
            yield -1, read

    def _gated_instructions(self, filled: Dict[Tuple[int, "Slot"], List[int]]):
        """Instruction indices that fire on at most one predicate path.

        An instruction is gated when it is predicated, or when *every*
        producer of each of its data operands is gated (it cannot receive
        operands — hence cannot fire — unless the gated path executed).
        Computed as a fixpoint.
        """
        gated = {inst.index for inst in self.instructions
                 if inst.predicate is not None}
        operand_producers: Dict[int, List[List[int]]] = {}
        for (index, slot), producer_ids in filled.items():
            if slot is not Slot.PRED:
                operand_producers.setdefault(index, []).append(producer_ids)
        changed = True
        while changed:
            changed = False
            for inst in self.instructions:
                if inst.index in gated:
                    continue
                slots = operand_producers.get(inst.index)
                if not slots:
                    continue
                # One fully-gated operand slot gates the instruction: it
                # cannot fire without that operand arriving.
                if any(plist and all(p >= 0 and p in gated for p in plist)
                       for plist in slots):
                    gated.add(inst.index)
                    changed = True
        return gated

    def _validate_register_slots(self) -> None:
        for position, read in enumerate(self.reads):
            if read.index != position:
                raise BlockConstraintError(
                    f"{self.label}: read slot mismatch at {position}")
            if not 0 <= read.reg < 128:
                raise BlockConstraintError(
                    f"{self.label}: read of register {read.reg}")
        seen_regs: Set[int] = set()
        for position, write in enumerate(self.writes):
            if write.index != position:
                raise BlockConstraintError(
                    f"{self.label}: write slot mismatch at {position}")
            if not 0 <= write.reg < 128:
                raise BlockConstraintError(
                    f"{self.label}: write of register {write.reg}")
            if write.reg in seen_regs:
                raise BlockConstraintError(
                    f"{self.label}: duplicate write to register {write.reg}")
            seen_regs.add(write.reg)

    def __str__(self) -> str:
        lines = [f"block {self.label} "
                 f"[{len(self.instructions)} insts, {len(self.reads)} reads, "
                 f"{len(self.writes)} writes]"]
        lines.extend(f"  {r}" for r in self.reads)
        lines.extend(f"  {i}" for i in self.instructions)
        lines.extend(f"  {w}" for w in self.writes)
        return "\n".join(lines)


@dataclass
class TripsFunction:
    """A function lowered to TRIPS blocks."""

    name: str
    blocks: Dict[str, TripsBlock] = field(default_factory=dict)
    entry: str = ""
    num_params: int = 0

    def add_block(self, block: TripsBlock) -> TripsBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block {block.label}")
        if not self.entry:
            self.entry = block.label
        self.blocks[block.label] = block
        return block

    def block(self, label: str) -> TripsBlock:
        return self.blocks[label]

    def validate(self) -> None:
        for block in self.blocks.values():
            block.validate()
            for succ in block.successor_labels():
                if succ not in self.blocks:
                    raise BlockConstraintError(
                        f"{block.label}: exit to unknown block {succ!r}")

    def __str__(self) -> str:
        parts = [f"trips-func @{self.name} entry={self.entry}"]
        parts.extend(str(b) for b in self.blocks.values())
        return "\n".join(parts)


@dataclass
class TripsProgram:
    """A fully lowered module for the TRIPS target."""

    functions: Dict[str, TripsFunction] = field(default_factory=dict)
    globals_image: List[Tuple[int, bytes]] = field(default_factory=list)
    data_end: int = 0

    def function(self, name: str) -> TripsFunction:
        return self.functions[name]

    def validate(self) -> None:
        for func in self.functions.values():
            func.validate()
            for block in func.blocks.values():
                for inst in block.instructions:
                    if inst.op is TOp.CALLO and inst.label not in self.functions:
                        raise BlockConstraintError(
                            f"{block.label}: call to unknown "
                            f"function {inst.label!r}")

    def all_blocks(self) -> Iterable[TripsBlock]:
        for func in self.functions.values():
            yield from func.blocks.values()

"""Parameterized out-of-order superscalar timing model.

Consumes the dynamic RISC instruction trace (``repro.risc.TraceRecord``)
and produces a cycle count, playing the role of the paper's commercial
reference platforms (Core 2, Pentium 4, Pentium III).  The model is a
single-pass scheduler with the first-order structures that differentiate
those machines:

* fetch bandwidth with branch-misprediction bubbles (tournament or gshare
  conditional predictor plus a return-address stack),
* a finite reorder buffer with in-order retirement,
* issue-width arbitration per cycle,
* operand-dependence wake-up via per-register ready times,
* a two-level cache hierarchy and DRAM latency scaled to each platform's
  processor/memory clock ratio (Table 1 of the paper).

Wrong-path execution is modeled as fetch dead time, as in the TRIPS
cycle model, keeping the cross-platform comparison consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.risc.isa import ROp
from repro.risc.simulator import TraceRecord

from repro.uarch.caches import DramModel, SetAssociativeCache
from repro.uarch.predictor import AlphaTournamentPredictor, GsharePredictor


@dataclass
class PlatformSpec:
    """Microarchitecture parameters of one reference platform."""

    name: str
    fetch_width: int
    issue_width: int
    rob_size: int
    predictor: str                 # "tournament" | "gshare"
    predictor_bits: int
    mispredict_penalty: int
    l1d_bytes: int
    l1d_assoc: int
    l1d_latency: int
    l2_bytes: int
    l2_assoc: int
    l2_latency: int
    dram_cycles: int
    clock_mhz: int
    fp_latency_scale: float = 1.0
    line_bytes: int = 64
    #: Memory operations (loads + stores) issued per cycle.
    mem_ports: int = 2
    #: Floating-point operations issued per cycle.
    fp_ports: int = 2


@dataclass
class SuperscalarStats:
    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    branch_mispredictions: int = 0
    l1d_misses: int = 0
    l1d_accesses: int = 0
    icache_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        return (1000.0 * self.branch_mispredictions / self.instructions
                if self.instructions else 0.0)


class SuperscalarModel:
    """Feed TraceRecords; read ``stats.cycles`` after ``finish()``."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self.stats = SuperscalarStats()
        if spec.predictor == "tournament":
            self.predictor = AlphaTournamentPredictor()
        else:
            self.predictor = GsharePredictor(spec.predictor_bits,
                                             spec.predictor_bits)
        self.ras: List[int] = []
        self.l1d = SetAssociativeCache(spec.l1d_bytes, spec.line_bytes,
                                       spec.l1d_assoc)
        self.l1i = SetAssociativeCache(32 * 1024, spec.line_bytes, 4)
        self.l2 = SetAssociativeCache(spec.l2_bytes, spec.line_bytes,
                                      spec.l2_assoc)
        self.dram = DramModel(spec.dram_cycles, 4)
        self.reg_ready: Dict[int, int] = {}
        self._issue_counts: Dict[Tuple[int, str], int] = {}
        self.fetch_time = 0.0
        self._fetched_in_cycle = 0
        self.retire_times: List[int] = []   # ring buffer of ROB entries
        self._prev_retire = 0

    # -- scheduling helpers --------------------------------------------------------

    def _issue_slot(self, ready: int, group: str = "all") -> int:
        """First cycle >= ready with an issue port free.

        Issue bandwidth is checked both globally (issue width) and for the
        operation's port group (memory ports, FP ports) — the structural
        hazards that cap real machines on kernel loops.
        """
        limits = {"all": self.spec.issue_width,
                  "mem": self.spec.mem_ports,
                  "fp": self.spec.fp_ports}
        cycle = ready
        counts = self._issue_counts
        while counts.get((cycle, "all"), 0) >= limits["all"] or (
                group != "all"
                and counts.get((cycle, group), 0) >= limits[group]):
            cycle += 1
        counts[(cycle, "all")] = counts.get((cycle, "all"), 0) + 1
        if group != "all":
            counts[(cycle, group)] = counts.get((cycle, group), 0) + 1
        if len(counts) > 32768:
            horizon = max(c for c, _g in counts) - 8192
            for key in [k for k in counts if k[0] < horizon]:
                del counts[key]
        return cycle

    def _memory_latency(self, address: int, now: int) -> int:
        self.stats.l1d_accesses += 1
        if self.l1d.access(address):
            return self.spec.l1d_latency
        self.stats.l1d_misses += 1
        if self.l2.access(address):
            return self.spec.l1d_latency + self.spec.l2_latency
        done = self.dram.access(address, now)
        return (done - now) + self.spec.l2_latency

    # -- main hooks ------------------------------------------------------------------

    def feed(self, record: TraceRecord) -> None:
        spec = self.spec
        stats = self.stats
        stats.instructions += 1

        # Fetch: instruction cache + fetch bandwidth.
        if not self.l1i.access(record.pc * 4):
            stats.icache_misses += 1
            self.fetch_time += self.spec.l2_latency
        fetch = self.fetch_time
        self.fetch_time += 1.0 / spec.fetch_width

        # ROB occupancy: dispatch waits for the entry rob_size back to
        # have retired.
        dispatch = int(fetch)
        if len(self.retire_times) >= spec.rob_size:
            dispatch = max(dispatch,
                           self.retire_times[-spec.rob_size])

        ready = dispatch
        for reg in record.sources:
            ready = max(ready, self.reg_ready.get(reg, 0))

        group = "all"
        if record.category in ("load", "store"):
            group = "mem"
        elif record.op in (ROp.FADD, ROp.FSUB, ROp.FMUL, ROp.FDIV,
                           ROp.FCMPEQ, ROp.FCMPLT, ROp.FCMPLE,
                           ROp.I2F, ROp.F2I):
            group = "fp"
        issue = self._issue_slot(ready, group)
        latency = record.latency
        if record.op in (ROp.FADD, ROp.FSUB, ROp.FMUL, ROp.FDIV):
            latency = max(1, int(latency * spec.fp_latency_scale))
        done = issue + latency
        if record.category == "load":
            done = issue + self._memory_latency(record.mem_address, issue)
        elif record.category == "store":
            # Stores retire through the store buffer; charge the cache
            # access for bandwidth accounting but not the dependence path.
            self._memory_latency(record.mem_address, issue)
            done = issue + 1

        # Branch resolution.
        if record.branch:
            stats.branches += 1
            mispredicted = False
            if record.op in (ROp.BNZ, ROp.BZ):
                predicted = self.predictor.predict(record.pc)
                self.predictor.update(record.pc, record.taken)
                mispredicted = predicted != record.taken
            elif record.is_call:
                self.ras.append(record.pc + 1)
                if len(self.ras) > 16:
                    self.ras.pop(0)
            elif record.is_return:
                predicted_target = self.ras.pop() if self.ras else -1
                # Return target prediction: almost always right with a RAS;
                # a cold/overflowed RAS mispredicts.
                mispredicted = predicted_target == -1
            if mispredicted:
                stats.branch_mispredictions += 1
                self.fetch_time = max(self.fetch_time,
                                      done + spec.mispredict_penalty)
            elif record.taken:
                # Taken branches redirect fetch: at most one taken branch
                # per fetch cycle.
                self.fetch_time = float(int(self.fetch_time) + 1)

        if record.dest >= 0:
            self.reg_ready[record.dest] = done

        retire = max(done, self._prev_retire)
        self._prev_retire = retire
        self.retire_times.append(retire)
        if len(self.retire_times) > spec.rob_size:
            self.retire_times.pop(0)
        if retire > stats.cycles:
            stats.cycles = retire

    def finish(self) -> SuperscalarStats:
        return self.stats

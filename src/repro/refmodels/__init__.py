"""Reference platform models (Core 2, Pentium 4, Pentium III, PowerPC)."""

from repro.refmodels.platforms import (
    CORE2, PENTIUM3, PENTIUM4, PLATFORMS, PUBLISHED_MATMUL_FPC,
    run_platform, run_powerpc,
)
from repro.refmodels.superscalar import (
    PlatformSpec, SuperscalarModel, SuperscalarStats,
)

__all__ = [
    "CORE2",
    "PENTIUM3",
    "PENTIUM4",
    "PLATFORMS",
    "PUBLISHED_MATMUL_FPC",
    "PlatformSpec",
    "SuperscalarModel",
    "SuperscalarStats",
    "run_platform",
    "run_powerpc",
]

"""Reference platform configurations (Table 1 of the paper).

Each platform is a :class:`~repro.refmodels.superscalar.PlatformSpec`
whose DRAM latency in *cycles* reflects the platform's processor/memory
clock ratio from Table 1 (Core 2 at 2.00, Pentium 4 at 6.75, Pentium III
at 4.50 — the Core 2 was deliberately underclocked to 1.6 GHz to match
the TRIPS ratio of 1.83).

"Compilers": the paper compares gcc- and icc-compiled binaries on the
Intel machines.  Here a platform run pairs a PlatformSpec with an
optimizer pipeline from :mod:`repro.opt` — ``O2`` plays gcc, ``ICC``
plays icc.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.function import Module
from repro.opt import optimize
from repro.risc import RiscSimulator, lower_module

from repro.refmodels.superscalar import (
    PlatformSpec, SuperscalarModel, SuperscalarStats,
)

CORE2 = PlatformSpec(
    name="Core 2",
    fetch_width=4, issue_width=4, rob_size=96,
    predictor="tournament", predictor_bits=14, mispredict_penalty=15,
    l1d_bytes=32 * 1024, l1d_assoc=8, l1d_latency=3,
    l2_bytes=2 * 1024 * 1024, l2_assoc=8, l2_latency=14,
    dram_cycles=110, clock_mhz=1600,
    fp_latency_scale=1.0,
    mem_ports=2, fp_ports=2,
)

PENTIUM4 = PlatformSpec(
    name="Pentium 4",
    fetch_width=3, issue_width=3, rob_size=126,
    predictor="gshare", predictor_bits=12, mispredict_penalty=30,
    l1d_bytes=16 * 1024, l1d_assoc=4, l1d_latency=4,
    l2_bytes=2 * 1024 * 1024, l2_assoc=8, l2_latency=25,
    dram_cycles=320, clock_mhz=3600,
    fp_latency_scale=1.4,
    mem_ports=1, fp_ports=1,
)

PENTIUM3 = PlatformSpec(
    name="Pentium III",
    fetch_width=3, issue_width=3, rob_size=40,
    predictor="gshare", predictor_bits=10, mispredict_penalty=11,
    l1d_bytes=16 * 1024, l1d_assoc=4, l1d_latency=3,
    l2_bytes=512 * 1024, l2_assoc=8, l2_latency=8,
    dram_cycles=80, clock_mhz=450,
    fp_latency_scale=1.2,
    mem_ports=1, fp_ports=1,
)

PLATFORMS: Dict[str, PlatformSpec] = {
    "core2": CORE2,
    "p4": PENTIUM4,
    "p3": PENTIUM3,
}

#: Published GotoBLAS / SSE FLOPS-per-cycle figures the paper quotes for
#: the Section 6 matrix-multiply comparison (not measured by our models).
PUBLISHED_MATMUL_FPC = {
    "Pentium 4": 1.87,
    "Core 2": 3.58,
    "TRIPS (paper)": 5.20,
}


def run_platform(module: Module, spec: PlatformSpec,
                 opt_level: str = "O2", entry: str = "main",
                 args: Optional[List[object]] = None,
                 memory_size: int = 16 * 1024 * 1024
                 ) -> Tuple[object, SuperscalarStats]:
    """Compile ``module`` with ``opt_level``, run it on ``spec``.

    Returns (program result, timing statistics).  The RISC functional
    simulator drives the timing model through its trace callback.
    """
    program = lower_module(optimize(module, opt_level))
    model = SuperscalarModel(spec)
    simulator = RiscSimulator(program, memory_size)
    result = simulator.run(entry, args, trace=model.feed)
    return result, model.finish()


def run_powerpc(module: Module, opt_level: str = "O2", entry: str = "main",
                args: Optional[List[object]] = None,
                memory_size: int = 16 * 1024 * 1024):
    """The PowerPC baseline: functional-only, for ISA normalization.

    Returns (result, RiscStats) — instruction counts, loads/stores, and
    register accesses, exactly what Figures 4/5 normalize against.
    """
    program = lower_module(optimize(module, opt_level))
    simulator = RiscSimulator(program, memory_size)
    result = simulator.run(entry, args)
    return result, simulator.stats

"""Benchmark registry (Table 2 of the paper).

Every workload is authored as an IR-building function and self-checks by
returning an integer checksum that must agree across the IR interpreter,
the RISC simulator, and both TRIPS simulators.

Suites mirror the paper:

* ``kernels`` — ct, conv, vadd, matrix (the four hand-optimized
  scientific kernels);
* ``versabench`` — fmradio, 802.11a, 8b10b (3 of 10);
* ``eembc`` — a representative subset of the 30 embedded benchmarks,
  including all eight the paper names in its figures;
* ``spec_int`` / ``spec_fp`` — scaled-down proxies of the SPEC CPU2000
  applications, preserving each benchmark's control-flow and memory
  character at simulator-friendly sizes (our SimPoint substitute).

"Hand-optimized" variants use the mechanized HAND pipeline, following the
paper's observation that its hand optimizations are largely mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.function import Module


@dataclass
class Benchmark:
    """One registered workload."""

    name: str
    suite: str
    build: Callable[[], Module]
    description: str = ""
    has_hand: bool = True

    def module(self) -> Module:
        return self.build()


_REGISTRY: Dict[str, Benchmark] = {}


def register(name: str, suite: str, description: str = "",
             has_hand: bool = True):
    """Decorator: register a module-building function as a benchmark."""
    def wrap(build: Callable[[], Module]) -> Callable[[], Module]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate benchmark {name!r}")
        _REGISTRY[name] = Benchmark(name, suite, build, description, has_hand)
        return build
    return wrap


def _ensure_loaded() -> None:
    # Import side effects populate the registry.
    from repro.bench import eembc, kernels, spec_fp, spec_int, versabench  # noqa: F401


def get(name: str) -> Benchmark:
    _ensure_loaded()
    return _REGISTRY[name]


def by_suite(suite: str) -> List[Benchmark]:
    _ensure_loaded()
    return [b for b in _REGISTRY.values() if b.suite == suite]


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def suite_names() -> List[str]:
    _ensure_loaded()
    return sorted({b.suite for b in _REGISTRY.values()})


#: The "simple benchmarks" of Figures 3/4/5/11: kernels + VersaBench +
#: the eight named EEMBC programs.
SIMPLE_BENCHMARKS = (
    "a2time", "rspeed", "ospf", "routelookup", "autocor", "conven",
    "fbital", "fft", "802.11a", "8b10b", "fmradio", "ct", "conv",
    "matrix", "vadd",
)


def simple_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in SIMPLE_BENCHMARKS]

"""The four hand-optimized scientific kernels (Table 2): matrix transpose
(ct), convolution (conv), vector add (vadd), and matrix multiply (matrix).

These are the workloads the paper uses to demonstrate the performance
potential of TRIPS: regular, loop-dominated, and parallelizable, so the
large window and 16-wide issue can be saturated.
"""

from __future__ import annotations

from repro.bench._util import Lcg, addr, init_f64, init_i64
from repro.bench.suites import register
from repro.ir.builder import Builder
from repro.ir.function import Module
from repro.ir.types import Type


@register("vadd", "kernels", "cache-resident vector add, c[i] = a[i] + b[i]")
def build_vadd() -> Module:
    # The paper's kernels are "largely L2 cache resident": a modest
    # working set iterated several times, so the partitioned L1 banks —
    # not DRAM — set the bandwidth (Figure 8).
    n = 256
    reps = 6
    rng = Lcg(7)
    b = Builder()
    a = b.global_array("a", n, 8, init_f64(rng.float01() for _ in range(n)))
    c = b.global_array("b", n, 8, init_f64(rng.float01() for _ in range(n)))
    d = b.global_array("c", n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, reps, name="rep"):
        with b.loop(0, n) as i:
            off = b.shl(i, 3)
            x = b.fload(b.add(a, off))
            y = b.fload(b.add(c, off))
            b.fstore(b.fadd(x, y), b.add(d, off))
    total = b.mov(0.0)
    with b.loop(0, n) as i:
        b.assign(total, b.fadd(total, b.fload(addr(b, d, i))))
    b.ret(b.f2i(b.fmul(total, 1000.0)))
    return b.module


@register("ct", "kernels", "blocked matrix transpose")
def build_ct() -> Module:
    n = 32
    reps = 3
    rng = Lcg(11)
    b = Builder()
    src = b.global_array("src", n * n, 8,
                         init_i64(rng.below(1 << 20) for _ in range(n * n)))
    dst = b.global_array("dst", n * n, 8)
    b.function("main", return_type=Type.I64)
    block = 8
    with b.loop(0, reps, name="rep"):
        _ct_pass(b, src, dst, n, block)
    check = b.mov(0)
    with b.loop(0, n * n, 7) as k:
        b.assign(check, b.add(check, b.load(addr(b, dst, k))))
    b.ret(check)
    return b.module


def _ct_pass(b: Builder, src: int, dst: int, n: int, block: int) -> None:
    with b.loop(0, n, block, name="bi") as bi:
        with b.loop(0, n, block, name="bj") as bj:
            with b.loop(0, block) as i:
                row = b.add(bi, i)
                with b.loop(0, block) as j:
                    col = b.add(bj, j)
                    value = b.load(addr(b, src, b.add(b.mul(row, n), col)))
                    b.store(value, addr(b, dst, b.add(b.mul(col, n), row)))


@register("conv", "kernels", "1-D convolution, 16-tap FIR")
def build_conv() -> Module:
    n = 192
    taps = 16
    reps = 3
    rng = Lcg(13)
    b = Builder()
    signal = b.global_array("signal", n + taps, 8,
                            init_f64(rng.float01() - 0.5
                                     for _ in range(n + taps)))
    coeff = b.global_array("coeff", taps, 8,
                           init_f64(rng.float01() for _ in range(taps)))
    output = b.global_array("output", n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, reps, name="rep"):
        with b.loop(0, n) as i:
            acc = b.mov(0.0)
            with b.loop(0, taps) as k:
                x = b.fload(addr(b, signal, b.add(i, k)))
                h = b.fload(addr(b, coeff, k))
                b.assign(acc, b.fadd(acc, b.fmul(x, h)))
            b.fstore(acc, addr(b, output, i))
    total = b.mov(0.0)
    with b.loop(0, n) as i:
        b.assign(total, b.fadd(total, b.fload(addr(b, output, i))))
    b.ret(b.f2i(b.fmul(total, 4096.0)))
    return b.module


@register("matrix", "kernels", "dense matrix multiply (float)")
def build_matrix() -> Module:
    n = 20
    rng = Lcg(17)
    b = Builder()
    ma = b.global_array("ma", n * n, 8,
                        init_f64(rng.float01() for _ in range(n * n)))
    mb = b.global_array("mb", n * n, 8,
                        init_f64(rng.float01() for _ in range(n * n)))
    mc = b.global_array("mc", n * n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, n) as i:
        with b.loop(0, n) as j:
            acc = b.mov(0.0)
            with b.loop(0, n) as k:
                x = b.fload(addr(b, ma, b.add(b.mul(i, n), k)))
                y = b.fload(addr(b, mb, b.add(b.mul(k, n), j)))
                b.assign(acc, b.fadd(acc, b.fmul(x, y)))
            b.fstore(acc, addr(b, mc, b.add(b.mul(i, n), j)))
    total = b.mov(0.0)
    with b.loop(0, n * n, 3) as k:
        b.assign(total, b.fadd(total, b.fload(addr(b, mc, k))))
    b.ret(b.f2i(b.fmul(total, 256.0)))
    return b.module

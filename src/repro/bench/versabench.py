"""VersaBench bit/stream benchmarks (3 of 10, as in the paper):
fmradio, 802.11a (convolutional encoder), and 8b10b (line coding)."""

from __future__ import annotations

from repro.bench._util import Lcg, addr, init_f64, init_i64
from repro.bench.suites import register
from repro.ir.builder import Builder
from repro.ir.function import Module
from repro.ir.types import Type


@register("fmradio", "versabench", "FM demodulation pipeline (FIR + demod)")
def build_fmradio() -> Module:
    n = 192
    taps = 8
    rng = Lcg(23)
    b = Builder()
    samples = b.global_array("samples", n + taps, 8,
                             init_f64(rng.float01() * 2.0 - 1.0
                                      for _ in range(n + taps)))
    lowpass = b.global_array("lowpass", taps, 8,
                             init_f64(1.0 / (k + 2) for k in range(taps)))
    filtered = b.global_array("filtered", n, 8)
    demod = b.global_array("demod", n, 8)
    b.function("main", return_type=Type.I64)
    # Stage 1: low-pass FIR.
    with b.loop(0, n) as i:
        acc = b.mov(0.0)
        with b.loop(0, taps) as k:
            x = b.fload(addr(b, samples, b.add(i, k)))
            h = b.fload(addr(b, lowpass, k))
            b.assign(acc, b.fadd(acc, b.fmul(x, h)))
        b.fstore(acc, addr(b, filtered, i))
    # Stage 2: FM demodulation: out[i] = f[i] * f[i-1] (discriminator
    # approximation without transcendentals).
    with b.loop(1, n) as i:
        cur = b.fload(addr(b, filtered, i))
        prev = b.fload(addr(b, filtered, b.sub(i, 1)))
        b.fstore(b.fmul(cur, prev), addr(b, demod, i))
    # Stage 3: deemphasis IIR y = 0.75*y + 0.25*x, folded into checksum.
    y = b.mov(0.0)
    total = b.mov(0.0)
    with b.loop(1, n) as i:
        x = b.fload(addr(b, demod, i))
        b.assign(y, b.fadd(b.fmul(y, 0.75), b.fmul(x, 0.25)))
        b.assign(total, b.fadd(total, y))
    b.ret(b.f2i(b.fmul(total, 65536.0)))
    return b.module


@register("802.11a", "versabench", "802.11a rate-1/2 convolutional encoder")
def build_80211a() -> Module:
    n = 384
    rng = Lcg(29)
    b = Builder()
    bits = b.global_array("bits", n, 8,
                          init_i64(rng.below(2) for _ in range(n)))
    encoded = b.global_array("encoded", 2 * n, 8)
    b.function("main", return_type=Type.I64)
    # K=7 encoder, generators 0o133 and 0o171 over a shift register.
    state = b.mov(0)
    with b.loop(0, n) as i:
        bit = b.load(addr(b, bits, i))
        b.assign(state, b.or_(b.shl(state, 1), bit))
        # Output A: parity of state & 0o133.
        va = b.and_(state, 0o133)
        pa = b.mov(0)
        with b.loop(0, 7) as k:
            b.assign(pa, b.xor(pa, b.and_(b.shr(va, k), 1)))
        # Output B: parity of state & 0o171.
        vb = b.and_(state, 0o171)
        pb = b.mov(0)
        with b.loop(0, 7) as k:
            b.assign(pb, b.xor(pb, b.and_(b.shr(vb, k), 1)))
        two_i = b.shl(i, 1)
        b.store(pa, addr(b, encoded, two_i))
        b.store(pb, addr(b, encoded, b.add(two_i, 1)))
    # Interleave + checksum.
    check = b.mov(0)
    with b.loop(0, 2 * n) as i:
        v = b.load(addr(b, encoded, i))
        b.assign(check, b.add(b.mul(check, 3), v))
        b.assign(check, b.and_(check, 0xFFFFFFFF))
    b.ret(check)
    return b.module


@register("8b10b", "versabench", "8b/10b line encoder with lookup tables")
def build_8b10b() -> Module:
    n = 512
    rng = Lcg(31)
    # Precompute 5b/6b and 3b/4b sub-block tables (values arbitrary but
    # fixed; the workload is the table lookups and disparity tracking).
    five_six = [(v * 37 + 13) & 0x3F for v in range(32)]
    three_four = [(v * 11 + 5) & 0xF for v in range(8)]
    b = Builder()
    data = b.global_array("data", n, 8,
                          init_i64(rng.below(256) for _ in range(n)))
    t56 = b.global_array("t56", 32, 8, init_i64(five_six))
    t34 = b.global_array("t34", 8, 8, init_i64(three_four))
    out = b.global_array("out", n, 8)
    b.function("main", return_type=Type.I64)
    disparity = b.mov(0)
    with b.loop(0, n) as i:
        byte = b.load(addr(b, data, i))
        low = b.and_(byte, 31)
        high = b.shr(byte, 5)
        code6 = b.load(addr(b, t56, low))
        code4 = b.load(addr(b, t34, high))
        word = b.or_(b.shl(code6, 4), code4)
        # Disparity: count ones in the 10-bit word, adjust running
        # disparity, complement the word when it would drift.
        ones = b.mov(0)
        with b.loop(0, 10) as k:
            b.assign(ones, b.add(ones, b.and_(b.shr(word, k), 1)))
        balance = b.sub(b.mul(ones, 2), 10)
        drift = b.add(disparity, balance)
        c = b.gt(b.mul(drift, drift), 4)
        with b.if_then_else(c) as (then, otherwise):
            with then:
                b.store(b.xor(word, 0x3FF), addr(b, out, i))
                b.assign(disparity, b.sub(disparity, balance))
            with otherwise:
                b.store(word, addr(b, out, i))
                b.assign(disparity, drift)
    check = b.mov(0)
    with b.loop(0, n) as i:
        b.assign(check, b.xor(b.mul(check, 5), b.load(addr(b, out, i))))
        b.assign(check, b.and_(check, 0xFFFFFFFF))
    b.ret(check)
    return b.module

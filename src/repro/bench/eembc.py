"""EEMBC embedded benchmark subset.

Includes all eight programs named in the paper's figures (a2time, rspeed,
ospf, routelookup, autocor, conven, fbital, fft) plus four more covering
the automotive/telecom/networking categories (idct, crc, tblook, viterbi-
style decode).  Each preserves the original workload's control/data
character at simulator scale.
"""

from __future__ import annotations

import math

from repro.bench._util import Lcg, addr, init_f64, init_i64
from repro.bench.suites import register
from repro.ir.builder import Builder
from repro.ir.function import Module
from repro.ir.types import Type


@register("a2time", "eembc", "angle-to-time: nested if/then/else ladders")
def build_a2time() -> Module:
    n = 256
    rng = Lcg(41)
    b = Builder()
    angles = b.global_array("angles", n, 8,
                            init_i64(rng.below(720) for _ in range(n)))
    table = b.global_array("table", 90, 8,
                           init_i64((k * k + 3) & 0xFFFF for k in range(90)))
    out = b.global_array("out", n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, n) as i:
        angle = b.load(addr(b, angles, i))
        # Quadrant folding: several nested if/else arms, as in the EEMBC
        # kernel the paper highlights for heavy predication.
        wrapped = b.rem(angle, 360)
        q2 = b.ge(wrapped, 180)
        with b.if_then_else(q2) as (then, otherwise):
            with then:
                folded = b.sub(wrapped, 180)
                hi = b.ge(folded, 90)
                with b.if_then_else(hi) as (t2, o2):
                    with t2:
                        v = b.load(addr(b, table, b.sub(179, folded)))
                        b.store(b.add(v, 1000), addr(b, out, i))
                    with o2:
                        v = b.load(addr(b, table, folded))
                        b.store(b.add(v, 2000), addr(b, out, i))
            with otherwise:
                hi = b.ge(wrapped, 90)
                with b.if_then_else(hi) as (t2, o2):
                    with t2:
                        v = b.load(addr(b, table, b.sub(179, wrapped)))
                        b.store(b.add(v, 3000), addr(b, out, i))
                    with o2:
                        v = b.load(addr(b, table, wrapped))
                        b.store(v, addr(b, out, i))
    check = b.mov(0)
    with b.loop(0, n) as i:
        b.assign(check, b.add(check, b.load(addr(b, out, i))))
    b.ret(check)
    return b.module


@register("rspeed", "eembc", "road speed: sequential pulse-interval math")
def build_rspeed() -> Module:
    n = 200
    rng = Lcg(43)
    b = Builder()
    pulses = b.global_array("pulses", n, 8,
                            init_i64(100 + rng.below(900)
                                     for _ in range(n)))
    b.function("main", return_type=Type.I64)
    speed = b.mov(0)
    filtered = b.mov(500)
    check = b.mov(0)
    with b.loop(0, n) as i:
        interval = b.load(addr(b, pulses, i))
        # Exponential filter then divide: inherently serial chain.
        b.assign(filtered, b.div(b.add(b.mul(filtered, 7), interval), 8))
        b.assign(speed, b.div(3_600_000, filtered))
        over = b.gt(speed, 6000)
        with b.if_then(over):
            b.assign(speed, 6000)
        b.assign(check, b.add(check, speed))
    b.ret(check)
    return b.module


@register("ospf", "eembc", "Dijkstra shortest path over a small graph")
def build_ospf() -> Module:
    nodes = 24
    rng = Lcg(47)
    weights = []
    for i in range(nodes):
        for j in range(nodes):
            if i == j:
                weights.append(0)
            elif (i + j) % 3 == 0 or rng.below(4) == 0:
                weights.append(1 + rng.below(30))
            else:
                weights.append(1 << 20)  # no edge
    b = Builder()
    w = b.global_array("w", nodes * nodes, 8, init_i64(weights))
    dist = b.global_array("dist", nodes, 8)
    visited = b.global_array("visited", nodes, 8)
    b.function("main", return_type=Type.I64)
    inf = 1 << 21
    with b.loop(0, nodes) as i:
        b.store(inf, addr(b, dist, i))
        b.store(0, addr(b, visited, i))
    b.store(0, addr(b, dist, 0))
    with b.loop(0, nodes) as _round:
        # Select the unvisited node with minimum distance.
        best = b.mov(-1)
        best_d = b.mov(inf + 1)
        with b.loop(0, nodes) as i:
            seen = b.load(addr(b, visited, i))
            d = b.load(addr(b, dist, i))
            c = b.and_(b.eq(seen, 0), b.lt(d, best_d))
            with b.if_then(c):
                b.assign(best, i)
                b.assign(best_d, d)
        found = b.ge(best, 0)
        with b.if_then(found):
            b.store(1, addr(b, visited, best))
            with b.loop(0, nodes) as j:
                edge = b.load(addr(b, w, b.add(b.mul(best, nodes), j)))
                cand = b.add(best_d, edge)
                dj = b.load(addr(b, dist, j))
                closer = b.lt(cand, dj)
                with b.if_then(closer):
                    b.store(cand, addr(b, dist, j))
    check = b.mov(0)
    with b.loop(0, nodes) as i:
        d = b.load(addr(b, dist, i))
        capped = b.mov(0)
        small = b.lt(d, inf)
        with b.if_then(small):
            b.assign(capped, d)
        b.assign(check, b.add(check, capped))
    b.ret(check)
    return b.module


@register("routelookup", "eembc", "binary-trie route lookups (serial)")
def build_routelookup() -> Module:
    # Trie nodes: [left, right, prefix] triples; built host-side.
    rng = Lcg(53)
    nodes = [[0, 0, 0]]
    for _ in range(120):
        key = rng.below(1 << 16)
        cur = 0
        for depth in range(15, 7, -1):
            bit = (key >> depth) & 1
            nxt = nodes[cur][bit]
            if nxt == 0:
                nodes.append([0, 0, 0])
                nxt = len(nodes) - 1
                nodes[cur][bit] = nxt
            cur = nxt
        nodes[cur][2] = key & 0xFF | 1
    flat = []
    for left, right, prefix in nodes:
        flat += [left, right, prefix]
    queries = [rng.below(1 << 16) for _ in range(256)]

    b = Builder()
    trie = b.global_array("trie", len(flat), 8, init_i64(flat))
    qarr = b.global_array("queries", len(queries), 8, init_i64(queries))
    b.function("main", return_type=Type.I64)
    check = b.mov(0)
    with b.loop(0, len(queries)) as qi:
        key = b.load(addr(b, qarr, qi))
        cur = b.mov(0)
        result = b.mov(0)
        with b.loop(15, 7, -1, name="depth") as depth:
            bit = b.and_(b.shr(key, depth), 1)
            base = b.mul(cur, 3)
            child = b.load(addr(b, trie, b.add(base, bit)))
            prefix = b.load(addr(b, trie, b.add(base, 2)))
            has_prefix = b.ne(prefix, 0)
            with b.if_then(has_prefix):
                b.assign(result, prefix)
            alive = b.ne(child, 0)
            with b.if_then_else(alive) as (then, otherwise):
                with then:
                    b.assign(cur, child)
                with otherwise:
                    b.assign(cur, 0)
        # The longest prefix lives on the leaf reached after the last step.
        leaf_prefix = b.load(addr(b, trie, b.add(b.mul(cur, 3), 2)))
        with b.if_then(b.ne(leaf_prefix, 0)):
            b.assign(result, leaf_prefix)
        b.assign(check, b.add(check, result))
    b.ret(check)
    return b.module


@register("autocor", "eembc", "fixed-point autocorrelation")
def build_autocor() -> Module:
    n = 256
    lags = 16
    rng = Lcg(59)
    b = Builder()
    x = b.global_array("x", n, 8,
                       init_i64(rng.below(4096) - 2048 for _ in range(n)))
    r = b.global_array("r", lags, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, lags) as lag:
        acc = b.mov(0)
        with b.loop(0, n - lags) as i:
            a = b.load(addr(b, x, i))
            c = b.load(addr(b, x, b.add(i, lag)))
            b.assign(acc, b.add(acc, b.mul(a, c)))
        b.store(b.sra(acc, 8), addr(b, r, lag))
    check = b.mov(0)
    with b.loop(0, lags) as lag:
        b.assign(check, b.xor(check, b.load(addr(b, r, lag))))
    b.ret(check)
    return b.module


@register("conven", "eembc", "convolutional encoder (telecom)")
def build_conven() -> Module:
    n = 400
    rng = Lcg(61)
    b = Builder()
    bits = b.global_array("bits", n, 8,
                          init_i64(rng.below(2) for _ in range(n)))
    b.function("main", return_type=Type.I64)
    state = b.mov(0)
    check = b.mov(0)
    with b.loop(0, n) as i:
        bit = b.load(addr(b, bits, i))
        b.assign(state, b.and_(b.or_(b.shl(state, 1), bit), 0x1F))
        g0 = b.xor(b.xor(b.and_(state, 1), b.and_(b.shr(state, 2), 1)),
                   b.and_(b.shr(state, 4), 1))
        g1 = b.xor(b.xor(b.and_(b.shr(state, 1), 1),
                         b.and_(b.shr(state, 3), 1)),
                   b.and_(b.shr(state, 4), 1))
        sym = b.or_(b.shl(g0, 1), g1)
        b.assign(check, b.and_(b.add(b.mul(check, 7), sym), 0xFFFFFF))
    b.ret(check)
    return b.module


@register("fbital", "eembc", "bit allocation by iterative waterfilling")
def build_fbital() -> Module:
    carriers = 64
    rng = Lcg(67)
    b = Builder()
    snr = b.global_array("snr", carriers, 8,
                         init_i64(rng.below(60) + 4 for _ in range(carriers)))
    alloc = b.global_array("alloc", carriers, 8)
    b.function("main", return_type=Type.I64)
    budget = b.mov(300)
    with b.loop(0, carriers) as i:
        b.store(0, addr(b, alloc, i))
    # Greedy rounds: give a bit to every carrier whose margin allows it.
    with b.loop(0, 10, name="round") as _r:
        with b.loop(0, carriers) as i:
            have = b.load(addr(b, alloc, i))
            quality = b.load(addr(b, snr, i))
            cost = b.add(b.mul(have, 6), 4)
            ok = b.and_(b.le(cost, quality), b.gt(budget, 0))
            with b.if_then(ok):
                b.store(b.add(have, 1), addr(b, alloc, i))
                b.assign(budget, b.sub(budget, 1))
    check = b.mov(0)
    with b.loop(0, carriers) as i:
        bits_i = b.load(addr(b, alloc, i))
        b.assign(check, b.add(b.mul(check, 3), bits_i))
        b.assign(check, b.and_(check, 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("fft", "eembc", "64-point iterative radix-2 FFT")
def build_fft() -> Module:
    n = 64
    rng = Lcg(71)
    # Twiddle tables computed host-side.
    wr = [math.cos(-2 * math.pi * k / n) for k in range(n // 2)]
    wi = [math.sin(-2 * math.pi * k / n) for k in range(n // 2)]
    # Bit-reversed input order precomputed host-side.
    def bitrev(v, bits):
        out = 0
        for _ in range(bits):
            out = (out << 1) | (v & 1)
            v >>= 1
        return out
    data = [rng.float01() - 0.5 for _ in range(n)]
    reordered = [data[bitrev(k, 6)] for k in range(n)]

    b = Builder()
    re = b.global_array("re", n, 8, init_f64(reordered))
    im = b.global_array("im", n, 8, init_f64([0.0] * n))
    twr = b.global_array("twr", n // 2, 8, init_f64(wr))
    twi = b.global_array("twi", n // 2, 8, init_f64(wi))
    b.function("main", return_type=Type.I64)
    size = b.mov(2)
    with b.loop(0, 6, name="stage") as _stage:
        half = b.div(size, 2)
        step = b.div(n, size)
        with b.loop(0, n, name="base") as base:
            inside = b.lt(b.rem(base, size), half)
            with b.if_then(inside):
                k = b.mul(b.rem(base, size), step)
                mate = b.add(base, half)
                wr_v = b.fload(addr(b, twr, k))
                wi_v = b.fload(addr(b, twi, k))
                ar = b.fload(addr(b, re, base))
                ai = b.fload(addr(b, im, base))
                br_ = b.fload(addr(b, re, mate))
                bi_ = b.fload(addr(b, im, mate))
                tr = b.fsub(b.fmul(br_, wr_v), b.fmul(bi_, wi_v))
                ti = b.fadd(b.fmul(br_, wi_v), b.fmul(bi_, wr_v))
                b.fstore(b.fadd(ar, tr), addr(b, re, base))
                b.fstore(b.fadd(ai, ti), addr(b, im, base))
                b.fstore(b.fsub(ar, tr), addr(b, re, mate))
                b.fstore(b.fsub(ai, ti), addr(b, im, mate))
        b.assign(size, b.mul(size, 2))
    power = b.mov(0.0)
    with b.loop(0, n) as i:
        r_v = b.fload(addr(b, re, i))
        i_v = b.fload(addr(b, im, i))
        b.assign(power, b.fadd(power, b.fadd(b.fmul(r_v, r_v),
                                             b.fmul(i_v, i_v))))
    b.ret(b.f2i(b.fmul(power, 1024.0)))
    return b.module


@register("idct", "eembc", "8x8 integer IDCT (consumer)", has_hand=True)
def build_idct() -> Module:
    rng = Lcg(73)
    blocks = 8
    b = Builder()
    src = b.global_array("src", blocks * 64, 8,
                         init_i64(rng.below(512) - 256
                                  for _ in range(blocks * 64)))
    dst = b.global_array("dst", blocks * 64, 8)
    cos_t = b.global_array("cos_t", 64, 8,
                           init_i64(int(1024 * math.cos((2 * x + 1) * u
                                                        * math.pi / 16))
                                    for u in range(8) for x in range(8)))
    b.function("main", return_type=Type.I64)
    with b.loop(0, blocks) as blk:
        base = b.mul(blk, 64)
        with b.loop(0, 8) as x:
            with b.loop(0, 8) as y:
                acc = b.mov(0)
                with b.loop(0, 8) as u:
                    coef = b.load(addr(b, src, b.add(base,
                                                     b.add(b.mul(u, 8), y))))
                    cv = b.load(addr(b, cos_t, b.add(b.mul(u, 8), x)))
                    b.assign(acc, b.add(acc, b.mul(coef, cv)))
                b.store(b.sra(acc, 10),
                        addr(b, dst, b.add(base, b.add(b.mul(x, 8), y))))
    check = b.mov(0)
    with b.loop(0, blocks * 64, 5) as i:
        b.assign(check, b.add(check, b.load(addr(b, dst, i))))
    b.ret(check)
    return b.module


@register("crc", "eembc", "CRC-32 over a buffer (telecom)", has_hand=True)
def build_crc() -> Module:
    n = 512
    rng = Lcg(79)
    # Table-driven CRC32 with host-precomputed table.
    table = []
    for v in range(256):
        c = v
        for _ in range(8):
            c = (c >> 1) ^ (0xEDB88320 if c & 1 else 0)
        table.append(c)
    b = Builder()
    buf = b.global_array("buf", n, 8,
                         init_i64(rng.below(256) for _ in range(n)))
    tab = b.global_array("tab", 256, 8, init_i64(table))
    b.function("main", return_type=Type.I64)
    crc = b.mov(0xFFFFFFFF)
    with b.loop(0, n) as i:
        byte = b.load(addr(b, buf, i))
        index = b.and_(b.xor(crc, byte), 0xFF)
        entry = b.load(addr(b, tab, index))
        b.assign(crc, b.xor(b.shr(b.and_(crc, 0xFFFFFFFF), 8), entry))
    b.ret(b.and_(crc, 0xFFFFFFFF))
    return b.module


@register("tblook", "eembc", "table lookup with interpolation (auto)")
def build_tblook() -> Module:
    n = 300
    rng = Lcg(83)
    b = Builder()
    xs = b.global_array("xs", 32, 8, init_i64(k * 100 for k in range(32)))
    ys = b.global_array("ys", 32, 8,
                        init_i64((k * k * 3 + 17) & 0xFFFF for k in range(32)))
    queries = b.global_array("queries", n, 8,
                             init_i64(rng.below(3100) for _ in range(n)))
    b.function("main", return_type=Type.I64)
    check = b.mov(0)
    with b.loop(0, n) as qi:
        q = b.load(addr(b, queries, qi))
        # Binary search for the bracketing segment.
        lo = b.mov(0)
        hi = b.mov(31)
        with b.loop(0, 5, name="bs") as _it:
            mid = b.div(b.add(lo, hi), 2)
            xv = b.load(addr(b, xs, mid))
            below = b.le(xv, q)
            with b.if_then_else(below) as (then, otherwise):
                with then:
                    b.assign(lo, mid)
                with otherwise:
                    b.assign(hi, mid)
        x0 = b.load(addr(b, xs, lo))
        x1 = b.load(addr(b, xs, b.add(lo, 1)))
        y0 = b.load(addr(b, ys, lo))
        y1 = b.load(addr(b, ys, b.add(lo, 1)))
        span = b.sub(x1, x0)
        interp = b.add(y0, b.div(b.mul(b.sub(y1, y0), b.sub(q, x0)), span))
        b.assign(check, b.add(check, interp))
    b.ret(check)
    return b.module


@register("viterb", "eembc", "Viterbi decoder inner loops (telecom)")
def build_viterb() -> Module:
    n = 128
    states = 16
    rng = Lcg(89)
    b = Builder()
    symbols = b.global_array("symbols", n, 8,
                             init_i64(rng.below(4) for _ in range(n)))
    metrics = b.global_array("metrics", states, 8,
                             init_i64([0] + [1000] * (states - 1)))
    scratch = b.global_array("scratch", states, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, n) as t:
        sym = b.load(addr(b, symbols, t))
        with b.loop(0, states) as s:
            # Two predecessors: s>>1 and (s>>1) + states//2.
            p0 = b.shr(s, 1)
            p1 = b.add(p0, states // 2)
            m0 = b.load(addr(b, metrics, p0))
            m1 = b.load(addr(b, metrics, p1))
            expected = b.and_(b.add(s, sym), 3)
            cost = b.and_(b.xor(s, sym), 3)
            c0 = b.add(m0, cost)
            c1 = b.add(m1, b.xor(cost, 1))
            better = b.le(c0, c1)
            with b.if_then_else(better) as (then, otherwise):
                with then:
                    b.store(c0, addr(b, scratch, s))
                with otherwise:
                    b.store(c1, addr(b, scratch, s))
        with b.loop(0, states) as s:
            b.store(b.load(addr(b, scratch, s)), addr(b, metrics, s))
    best = b.mov(1 << 30)
    with b.loop(0, states) as s:
        m = b.load(addr(b, metrics, s))
        closer = b.lt(m, best)
        with b.if_then(closer):
            b.assign(best, m)
    b.ret(best)
    return b.module


@register("aifirf", "eembc", "fixed-point FIR filter (automotive)")
def build_aifirf() -> Module:
    n = 256
    taps = 32
    rng = Lcg(97)
    b = Builder()
    samples = b.global_array("samples", n + taps, 8,
                             init_i64(rng.below(2048) - 1024
                                      for _ in range(n + taps)))
    coeffs = b.global_array("coeffs", taps, 8,
                            init_i64(rng.below(256) - 128
                                     for _ in range(taps)))
    out = b.global_array("out", n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, n) as i:
        acc = b.mov(0)
        with b.loop(0, taps) as k:
            x = b.load(addr(b, samples, b.add(i, k)))
            h = b.load(addr(b, coeffs, k))
            b.assign(acc, b.add(acc, b.mul(x, h)))
        b.store(b.sra(acc, 7), addr(b, out, i))
    check = b.mov(0)
    with b.loop(0, n) as i:
        b.assign(check, b.and_(b.add(b.mul(check, 3),
                                     b.load(addr(b, out, i))), 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("pktflow", "eembc", "packet-flow classification (networking)")
def build_pktflow() -> Module:
    packets = 220
    rng = Lcg(111)
    # Packet = (src, dst, proto, length); host-built.
    flat = []
    for _ in range(packets):
        flat += [rng.below(16), rng.below(16), rng.below(4),
                 64 + rng.below(1400)]
    b = Builder()
    pkts = b.global_array("pkts", packets * 4, 8, init_i64(flat))
    counts = b.global_array("counts", 64, 8)
    dropped = b.global_array("dropped", 1, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, packets) as p:
        base = b.mul(p, 4)
        src = b.load(addr(b, pkts, base))
        dst = b.load(addr(b, pkts, b.add(base, 1)))
        proto = b.load(addr(b, pkts, b.add(base, 2)))
        length = b.load(addr(b, pkts, b.add(base, 3)))
        # Checks: runt/jumbo drop, protocol filter, then flow binning.
        runt = b.lt(length, 64)
        jumbo = b.gt(length, 1400)
        bad = b.or_(runt, b.or_(jumbo, b.eq(proto, 3)))
        with b.if_then_else(bad) as (then, otherwise):
            with then:
                old = b.load(dropped)
                b.store(b.add(old, 1), dropped)
            with otherwise:
                flow = b.and_(b.add(b.mul(src, 7), dst), 63)
                slot = addr(b, counts, flow)
                b.store(b.add(b.load(slot), length), slot)
    check = b.mov(b.load(dropped))
    with b.loop(0, 64) as f:
        b.assign(check, b.and_(b.add(b.mul(check, 5),
                                     b.load(addr(b, counts, f))),
                               0xFFFFFFF))
    b.ret(check)
    return b.module


@register("bitmnp", "eembc", "bit-manipulation shifts/rotates (auto)")
def build_bitmnp() -> Module:
    n = 300
    rng = Lcg(113)
    b = Builder()
    words = b.global_array("words", n, 8,
                           init_i64(rng.next() for _ in range(n)))
    b.function("main", return_type=Type.I64)
    check = b.mov(0)
    with b.loop(0, n) as i:
        w = b.load(addr(b, words, i))
        # Rotate left by (i & 15), reverse nibbles of the low byte, merge.
        amount = b.and_(i, 15)
        rotated = b.or_(b.shl(w, amount),
                        b.shr(w, b.sub(64, amount)))
        low = b.and_(rotated, 0xFF)
        swapped = b.or_(b.shl(b.and_(low, 0x0F), 4),
                        b.shr(b.and_(low, 0xF0), 4))
        merged = b.xor(rotated, swapped)
        b.assign(check, b.and_(b.add(b.mul(check, 3), merged),
                               0xFFFFFFFF))
    b.ret(check)
    return b.module


@register("canrdr", "eembc", "CAN message dispatch (automotive)")
def build_canrdr() -> Module:
    messages = 240
    rng = Lcg(117)
    flat = []
    for _ in range(messages):
        flat += [rng.below(32), rng.below(256)]   # (id, payload)
    b = Builder()
    msgs = b.global_array("msgs", messages * 2, 8, init_i64(flat))
    state = b.global_array("state", 8, 8)
    b.function("main", return_type=Type.I64)
    errors = b.mov(0)
    with b.loop(0, messages) as m:
        base = b.mul(m, 2)
        mid = b.load(addr(b, msgs, base))
        payload = b.load(addr(b, msgs, b.add(base, 1)))
        # Dispatch ladder over message classes, as in the CAN reader.
        is_engine = b.lt(mid, 8)
        with b.if_then_else(is_engine) as (then, otherwise):
            with then:
                slot = addr(b, state, 0)
                b.store(b.add(b.load(slot), payload), slot)
            with otherwise:
                is_brake = b.lt(mid, 16)
                with b.if_then_else(is_brake) as (t2, o2):
                    with t2:
                        slot = addr(b, state, 1)
                        b.store(b.xor(b.load(slot), payload), slot)
                    with o2:
                        is_diag = b.lt(mid, 24)
                        with b.if_then_else(is_diag) as (t3, o3):
                            with t3:
                                slot = addr(b, state, 2)
                                b.store(b.add(b.load(slot), 1), slot)
                            with o3:
                                b.assign(errors, b.add(errors, 1))
    check = b.mov(b.mul(errors, 1000))
    with b.loop(0, 8) as s:
        b.assign(check, b.and_(b.add(b.mul(check, 7),
                                     b.load(addr(b, state, s))),
                               0xFFFFFFF))
    b.ret(check)
    return b.module


@register("iirflt", "eembc", "cascaded IIR biquad filter (automotive)")
def build_iirflt() -> Module:
    n = 320
    rng = Lcg(119)
    b = Builder()
    samples = b.global_array("samples", n, 8,
                             init_i64(rng.below(4096) - 2048
                                      for _ in range(n)))
    b.function("main", return_type=Type.I64)
    # Two biquad sections in fixed point (Q8 coefficients).
    x1 = b.mov(0); x2 = b.mov(0); y1 = b.mov(0); y2 = b.mov(0)
    z1 = b.mov(0); z2 = b.mov(0); w1 = b.mov(0); w2 = b.mov(0)
    check = b.mov(0)
    with b.loop(0, n) as i:
        x = b.load(addr(b, samples, i))
        t = b.add(b.mul(x, 64),
                  b.sub(b.add(b.mul(x1, 120), b.mul(x2, -50)),
                        b.add(b.mul(y1, 30), b.mul(y2, 10))))
        y = b.sra(t, 8)
        b.assign(x2, x1); b.assign(x1, x)
        b.assign(y2, y1); b.assign(y1, y)
        t2 = b.add(b.mul(y, 90),
                   b.sub(b.add(b.mul(z1, 100), b.mul(z2, -40)),
                         b.add(b.mul(w1, 20), b.mul(w2, 5))))
        w = b.sra(t2, 8)
        b.assign(z2, z1); b.assign(z1, y)
        b.assign(w2, w1); b.assign(w1, w)
        b.assign(check, b.and_(b.add(check, w), 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("cacheb", "eembc", "cache-buster strided memory walk (auto)")
def build_cacheb() -> Module:
    size = 4096          # 32 KB of int64 — exceeds one L1 data bank
    rng = Lcg(121)
    b = Builder()
    buf = b.global_array("buf", size, 8)
    b.function("main", return_type=Type.I64)
    # Initialize with a stride pattern, then walk with conflicting strides
    # (the EEMBC kernel stresses the data cache on purpose).
    with b.loop(0, size) as i:
        b.store(b.and_(b.mul(i, 2654435761), 0xFFFF), addr(b, buf, i))
    check = b.mov(0)
    for stride in (1, 17, 64, 129):
        idx = b.mov(0)
        with b.loop(0, 512, name=f"s{stride}"):
            v = b.load(addr(b, buf, idx))
            b.assign(check, b.and_(b.add(check, v), 0xFFFFFFF))
            b.assign(idx, b.rem(b.add(idx, stride), size))
    b.ret(check)
    return b.module

"""SPEC CPU2000 floating-point proxies (8 of 14, matching the paper's
subset: applu, apsi, art, equake, mesa, mgrid, swim, wupwise)."""

from __future__ import annotations

from repro.bench._util import Lcg, addr, init_f64, init_i64
from repro.bench.suites import register
from repro.ir.builder import Builder
from repro.ir.function import Module
from repro.ir.types import Type


@register("applu", "spec_fp", "SSOR sweep on a small 3-D grid",
          has_hand=False)
def build_applu() -> Module:
    nx = ny = nz = 8
    rng = Lcg(151)
    size = nx * ny * nz
    b = Builder()
    u = b.global_array("u", size, 8,
                       init_f64(rng.float01() for _ in range(size)))
    rhs = b.global_array("rhs", size, 8,
                         init_f64(rng.float01() * 0.1 for _ in range(size)))
    b.function("main", return_type=Type.I64)
    omega = 1.2
    with b.loop(0, 4, name="sweep") as _s:
        with b.loop(1, nz - 1) as k:
            with b.loop(1, ny - 1) as j:
                with b.loop(1, nx - 1) as i:
                    idx = b.add(b.add(b.mul(k, nx * ny), b.mul(j, nx)), i)
                    center = b.fload(addr(b, u, idx))
                    west = b.fload(addr(b, u, b.sub(idx, 1)))
                    east = b.fload(addr(b, u, b.add(idx, 1)))
                    south = b.fload(addr(b, u, b.sub(idx, nx)))
                    north = b.fload(addr(b, u, b.add(idx, nx)))
                    down = b.fload(addr(b, u, b.sub(idx, nx * ny)))
                    up = b.fload(addr(b, u, b.add(idx, nx * ny)))
                    f = b.fload(addr(b, rhs, idx))
                    neighbors = b.fadd(b.fadd(b.fadd(west, east),
                                              b.fadd(south, north)),
                                       b.fadd(down, up))
                    gs = b.fmul(b.fadd(neighbors, f), 1.0 / 6.0)
                    relaxed = b.fadd(b.fmul(center, 1.0 - omega),
                                     b.fmul(gs, omega))
                    b.fstore(relaxed, addr(b, u, idx))
    norm = b.mov(0.0)
    with b.loop(0, size, 3) as i:
        v = b.fload(addr(b, u, i))
        b.assign(norm, b.fadd(norm, b.fmul(v, v)))
    b.ret(b.f2i(b.fmul(norm, 1000.0)))
    return b.module


@register("apsi", "spec_fp", "atmospheric stencil + polynomial physics",
          has_hand=False)
def build_apsi() -> Module:
    n = 24
    rng = Lcg(157)
    b = Builder()
    temp = b.global_array("temp", n * n, 8,
                          init_f64(250.0 + 50 * rng.float01()
                                   for _ in range(n * n)))
    wind = b.global_array("wind", n * n, 8,
                          init_f64(rng.float01() - 0.5 for _ in range(n * n)))
    out = b.global_array("out", n * n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, 3, name="step") as _t:
        with b.loop(1, n - 1) as i:
            with b.loop(1, n - 1) as j:
                idx = b.add(b.mul(i, n), j)
                t0 = b.fload(addr(b, temp, idx))
                w = b.fload(addr(b, wind, idx))
                adv = b.fmul(w, b.fsub(b.fload(addr(b, temp, b.add(idx, 1))),
                                       b.fload(addr(b, temp, b.sub(idx, 1)))))
                # Saturation vapor pressure by cubic polynomial (the
                # transcendental-replacement trick apsi itself uses).
                x = b.fmul(t0, 0.004)
                poly = b.fadd(1.0, b.fmul(x, b.fadd(
                    1.0, b.fmul(x, b.fadd(0.5, b.fmul(x, 0.1666))))))
                b.fstore(b.fadd(t0, b.fmul(0.05, b.fsub(poly, adv))),
                         addr(b, out, idx))
        with b.loop(1, n - 1) as i:
            with b.loop(1, n - 1) as j:
                idx = b.add(b.mul(i, n), j)
                b.fstore(b.fload(addr(b, out, idx)), addr(b, temp, idx))
    norm = b.mov(0.0)
    with b.loop(0, n * n, 5) as i:
        b.assign(norm, b.fadd(norm, b.fload(addr(b, temp, i))))
    b.ret(b.f2i(norm))
    return b.module


@register("art", "spec_fp", "adaptive resonance F1 matching loops",
          has_hand=False)
def build_art() -> Module:
    features = 32
    categories = 16
    rng = Lcg(163)
    b = Builder()
    input_v = b.global_array("input", features, 8,
                             init_f64(rng.float01() for _ in range(features)))
    weights = b.global_array("weights", categories * features, 8,
                             init_f64(rng.float01()
                                      for _ in range(categories * features)))
    scores = b.global_array("scores", categories, 8)
    b.function("main", return_type=Type.I64)
    winner = b.mov(0)
    with b.loop(0, 8, name="passes") as _p:
        # Bottom-up activation: dot(input, min(input, w)) per category.
        with b.loop(0, categories) as c:
            acc = b.mov(0.0)
            base = b.mul(c, features)
            with b.loop(0, features) as f:
                x = b.fload(addr(b, input_v, f))
                w = b.fload(addr(b, weights, b.add(base, f)))
                smaller = b.flt(x, w)
                m = b.mov(0.0)
                with b.if_then_else(smaller) as (then, otherwise):
                    with then:
                        b.assign(m, x)
                    with otherwise:
                        b.assign(m, w)
                b.assign(acc, b.fadd(acc, m))
            b.fstore(acc, addr(b, scores, c))
        # Winner take all + weight decay on the winner.
        best = b.mov(-1.0)
        b.assign(winner, 0)
        with b.loop(0, categories) as c:
            s = b.fload(addr(b, scores, c))
            better = b.flt(best, s)
            with b.if_then(better):
                b.assign(best, s)
                b.assign(winner, c)
        base = b.mul(winner, features)
        with b.loop(0, features) as f:
            w = b.fload(addr(b, weights, b.add(base, f)))
            b.fstore(b.fmul(w, 0.95), addr(b, weights, b.add(base, f)))
    b.ret(winner)
    return b.module


@register("equake", "spec_fp", "sparse matrix-vector products (CSR)",
          has_hand=False)
def build_equake() -> Module:
    n = 96
    rng = Lcg(167)
    # Host-side CSR: ~6 nonzeros per row.
    row_ptr = [0]
    cols = []
    vals = []
    for i in range(n):
        nnz = 3 + rng.below(5)
        for _ in range(nnz):
            cols.append(rng.below(n))
            vals.append(rng.float01() - 0.3)
        row_ptr.append(len(cols))
    b = Builder()
    rp = b.global_array("rp", n + 1, 8, init_i64(row_ptr))
    ci = b.global_array("ci", len(cols), 8, init_i64(cols))
    av = b.global_array("av", len(vals), 8, init_f64(vals))
    x = b.global_array("x", n, 8, init_f64(rng.float01() for _ in range(n)))
    y = b.global_array("y", n, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, 6, name="steps") as _t:
        with b.loop(0, n) as i:
            start = b.load(addr(b, rp, i))
            stop = b.load(addr(b, rp, b.add(i, 1)))
            acc = b.mov(0.0)
            k = b.mov(start)
            with b.while_loop(lambda: b.lt(k, stop)):
                col = b.load(addr(b, ci, k))
                a = b.fload(addr(b, av, k))
                xv = b.fload(addr(b, x, col))
                b.assign(acc, b.fadd(acc, b.fmul(a, xv)))
                b.assign(k, b.add(k, 1))
            b.fstore(acc, addr(b, y, i))
        # x = 0.9x + 0.1y (time integration).
        with b.loop(0, n) as i:
            xv = b.fload(addr(b, x, i))
            yv = b.fload(addr(b, y, i))
            b.fstore(b.fadd(b.fmul(xv, 0.9), b.fmul(yv, 0.1)),
                     addr(b, x, i))
    norm = b.mov(0.0)
    with b.loop(0, n) as i:
        v = b.fload(addr(b, x, i))
        b.assign(norm, b.fadd(norm, b.fmul(v, v)))
    b.ret(b.f2i(b.fmul(norm, 100.0)))
    return b.module


@register("mesa", "spec_fp", "triangle rasterization with z-test",
          has_hand=False)
def build_mesa() -> Module:
    width = height = 18
    tris = 12
    rng = Lcg(173)
    verts = []
    for _ in range(tris):
        x0, y0 = rng.below(width), rng.below(height)
        verts += [x0, y0, rng.below(width), rng.below(height),
                  rng.below(width), rng.below(height),
                  rng.below(1000)]
    b = Builder()
    tri = b.global_array("tri", len(verts), 8, init_i64(verts))
    zbuf = b.global_array("zbuf", width * height, 8,
                          init_i64([1 << 20] * (width * height)))
    color = b.global_array("color", width * height, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, tris) as t:
        base = b.mul(t, 7)
        x0 = b.load(addr(b, tri, base))
        y0 = b.load(addr(b, tri, b.add(base, 1)))
        x1 = b.load(addr(b, tri, b.add(base, 2)))
        y1 = b.load(addr(b, tri, b.add(base, 3)))
        x2 = b.load(addr(b, tri, b.add(base, 4)))
        y2 = b.load(addr(b, tri, b.add(base, 5)))
        depth = b.load(addr(b, tri, b.add(base, 6)))
        with b.loop(0, height) as py:
            with b.loop(0, width) as px:
                # Edge functions (integer barycentric sign tests).
                e0 = b.sub(b.mul(b.sub(x1, x0), b.sub(py, y0)),
                           b.mul(b.sub(y1, y0), b.sub(px, x0)))
                e1 = b.sub(b.mul(b.sub(x2, x1), b.sub(py, y1)),
                           b.mul(b.sub(y2, y1), b.sub(px, x1)))
                e2 = b.sub(b.mul(b.sub(x0, x2), b.sub(py, y2)),
                           b.mul(b.sub(y0, y2), b.sub(px, x2)))
                inside = b.and_(b.and_(b.ge(e0, 0), b.ge(e1, 0)),
                                b.ge(e2, 0))
                with b.if_then(inside):
                    pix = b.add(b.mul(py, width), px)
                    z = b.load(addr(b, zbuf, pix))
                    closer = b.lt(depth, z)
                    with b.if_then(closer):
                        b.store(depth, addr(b, zbuf, pix))
                        b.store(b.add(b.mul(t, 31), 7), addr(b, color, pix))
    check = b.mov(0)
    with b.loop(0, width * height) as i:
        b.assign(check, b.add(b.mul(check, 3),
                              b.load(addr(b, color, i))))
        b.assign(check, b.and_(check, 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("mgrid", "spec_fp", "multigrid V-cycle relaxation",
          has_hand=False)
def build_mgrid() -> Module:
    n = 16   # finest grid side (2-D for scale)
    rng = Lcg(179)
    b = Builder()
    fine = b.global_array("fine", n * n, 8,
                          init_f64(rng.float01() for _ in range(n * n)))
    coarse = b.global_array("coarse", (n // 2) * (n // 2), 8)
    b.function("main", return_type=Type.I64)
    half = n // 2
    with b.loop(0, 3, name="vcycle") as _v:
        # Relax on the fine grid.
        with b.loop(0, 2, name="relax") as _r:
            with b.loop(1, n - 1) as i:
                with b.loop(1, n - 1) as j:
                    idx = b.add(b.mul(i, n), j)
                    s = b.fadd(
                        b.fadd(b.fload(addr(b, fine, b.sub(idx, 1))),
                               b.fload(addr(b, fine, b.add(idx, 1)))),
                        b.fadd(b.fload(addr(b, fine, b.sub(idx, n))),
                               b.fload(addr(b, fine, b.add(idx, n)))))
                    b.fstore(b.fmul(s, 0.25), addr(b, fine, idx))
        # Restrict to the coarse grid.
        with b.loop(0, half) as i:
            with b.loop(0, half) as j:
                src = b.add(b.mul(b.mul(i, 2), n), b.mul(j, 2))
                v = b.fload(addr(b, fine, src))
                b.fstore(b.fmul(v, 0.5), addr(b, coarse,
                                              b.add(b.mul(i, half), j)))
        # Prolongate back (inject).
        with b.loop(0, half) as i:
            with b.loop(0, half) as j:
                cv = b.fload(addr(b, coarse, b.add(b.mul(i, half), j)))
                dst = b.add(b.mul(b.mul(i, 2), n), b.mul(j, 2))
                old = b.fload(addr(b, fine, dst))
                b.fstore(b.fadd(old, b.fmul(cv, 0.1)), addr(b, fine, dst))
    norm = b.mov(0.0)
    with b.loop(0, n * n, 3) as i:
        v = b.fload(addr(b, fine, i))
        b.assign(norm, b.fadd(norm, b.fmul(v, v)))
    b.ret(b.f2i(b.fmul(norm, 10000.0)))
    return b.module


@register("swim", "spec_fp", "shallow-water 2-D stencil", has_hand=False)
def build_swim() -> Module:
    n = 20
    rng = Lcg(181)
    b = Builder()
    u = b.global_array("u", n * n, 8,
                       init_f64(rng.float01() for _ in range(n * n)))
    v = b.global_array("v", n * n, 8,
                       init_f64(rng.float01() for _ in range(n * n)))
    p = b.global_array("p", n * n, 8,
                       init_f64(1.0 + rng.float01() for _ in range(n * n)))
    b.function("main", return_type=Type.I64)
    with b.loop(0, 4, name="step") as _t:
        with b.loop(1, n - 1) as i:
            with b.loop(1, n - 1) as j:
                idx = b.add(b.mul(i, n), j)
                du = b.fsub(b.fload(addr(b, p, b.add(idx, 1))),
                            b.fload(addr(b, p, b.sub(idx, 1))))
                dv = b.fsub(b.fload(addr(b, p, b.add(idx, n))),
                            b.fload(addr(b, p, b.sub(idx, n))))
                uv = b.fload(addr(b, u, idx))
                vv = b.fload(addr(b, v, idx))
                b.fstore(b.fsub(uv, b.fmul(du, 0.05)), addr(b, u, idx))
                b.fstore(b.fsub(vv, b.fmul(dv, 0.05)), addr(b, v, idx))
        with b.loop(1, n - 1) as i:
            with b.loop(1, n - 1) as j:
                idx = b.add(b.mul(i, n), j)
                div = b.fadd(
                    b.fsub(b.fload(addr(b, u, b.add(idx, 1))),
                           b.fload(addr(b, u, b.sub(idx, 1)))),
                    b.fsub(b.fload(addr(b, v, b.add(idx, n))),
                           b.fload(addr(b, v, b.sub(idx, n)))))
                pv = b.fload(addr(b, p, idx))
                b.fstore(b.fsub(pv, b.fmul(div, 0.02)), addr(b, p, idx))
    norm = b.mov(0.0)
    with b.loop(0, n * n, 4) as i:
        b.assign(norm, b.fadd(norm, b.fload(addr(b, p, i))))
    b.ret(b.f2i(b.fmul(norm, 1000.0)))
    return b.module


@register("wupwise", "spec_fp", "complex matrix-vector (lattice QCD)",
          has_hand=False)
def build_wupwise() -> Module:
    sites = 48
    rng = Lcg(191)
    b = Builder()
    # Complex 2x2 matrix per site (8 doubles) times complex 2-vector.
    mats = b.global_array("mats", sites * 8, 8,
                          init_f64(rng.float01() - 0.5
                                   for _ in range(sites * 8)))
    vecs = b.global_array("vecs", sites * 4, 8,
                          init_f64(rng.float01() - 0.5
                                   for _ in range(sites * 4)))
    out = b.global_array("out", sites * 4, 8)
    b.function("main", return_type=Type.I64)
    with b.loop(0, 5, name="sweeps") as _s:
        with b.loop(0, sites) as s:
            mb = b.mul(s, 8)
            vb = b.mul(s, 4)
            # out = M * v for 2x2 complex M, 2-vector v.
            for row in range(2):
                ar = b.mov(0.0)
                ai = b.mov(0.0)
                for col in range(2):
                    mr = b.fload(addr(b, mats, b.add(mb, row * 4 + col * 2)))
                    mi = b.fload(addr(b, mats,
                                      b.add(mb, row * 4 + col * 2 + 1)))
                    vr = b.fload(addr(b, vecs, b.add(vb, col * 2)))
                    vi = b.fload(addr(b, vecs, b.add(vb, col * 2 + 1)))
                    b.assign(ar, b.fadd(ar, b.fsub(b.fmul(mr, vr),
                                                   b.fmul(mi, vi))))
                    b.assign(ai, b.fadd(ai, b.fadd(b.fmul(mr, vi),
                                                   b.fmul(mi, vr))))
                b.fstore(ar, addr(b, out, b.add(vb, row * 2)))
                b.fstore(ai, addr(b, out, b.add(vb, row * 2 + 1)))
        # Feed back with damping.
        with b.loop(0, sites * 4) as k:
            ov = b.fload(addr(b, out, k))
            iv = b.fload(addr(b, vecs, k))
            b.fstore(b.fadd(b.fmul(iv, 0.7), b.fmul(ov, 0.3)),
                     addr(b, vecs, k))
    norm = b.mov(0.0)
    with b.loop(0, sites * 4) as k:
        vv = b.fload(addr(b, vecs, k))
        b.assign(norm, b.fadd(norm, b.fmul(vv, vv)))
    b.ret(b.f2i(b.fmul(norm, 1000.0)))
    return b.module

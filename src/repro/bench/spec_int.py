"""SPEC CPU2000 integer proxies (10 of 12, as in the paper — gap and the
C++ benchmark are omitted there too).

Each proxy is a scaled-down program with the control-flow and memory
character of its namesake: bzip2's transform pipelines, crafty's
branchy board evaluation with calls, gcc's irregular graph walking, gzip's
window match search, mcf's pointer-style network arcs, parser's recursive
descent, perlbmk's string hashing, twolf's annealing loop, vortex's
object tables, and vpr's maze routing.  These stand in for SimPoint
regions of the originals.
"""

from __future__ import annotations

from repro.bench._util import Lcg, addr, emit_lcg_step, init_i64
from repro.bench.suites import register
from repro.ir.builder import Builder
from repro.ir.function import Module
from repro.ir.types import Type


@register("bzip2", "spec_int", "RLE + move-to-front transform", has_hand=False)
def build_bzip2() -> Module:
    n = 360
    rng = Lcg(101)
    data = [rng.below(16) for _ in range(n)]
    b = Builder()
    src = b.global_array("src", n, 8, init_i64(data))
    rle = b.global_array("rle", 2 * n, 8)
    mtf = b.global_array("mtf", 16, 8, init_i64(range(16)))
    b.function("main", return_type=Type.I64)
    # Run-length encode.
    out = b.mov(0)
    i = b.mov(0)
    with b.while_loop(lambda: b.lt(i, n)):
        sym = b.load(addr(b, src, i))
        run = b.mov(1)
        nxt = b.add(i, 1)
        with b.while_loop(lambda: b.and_(b.lt(nxt, n),
                                         b.eq(b.load(addr(b, src, nxt)), sym))):
            b.assign(run, b.add(run, 1))
            b.assign(nxt, b.add(nxt, 1))
        b.store(sym, addr(b, rle, out))
        b.store(run, addr(b, rle, b.add(out, 1)))
        b.assign(out, b.add(out, 2))
        b.assign(i, nxt)
    # Move-to-front over the RLE symbols.
    check = b.mov(0)
    with b.loop(0, out, 2, name="k") as k:
        sym = b.load(addr(b, rle, k))
        # Find symbol's rank.
        rank = b.mov(0)
        with b.loop(0, 16) as j:
            v = b.load(addr(b, mtf, j))
            hit = b.eq(v, sym)
            with b.if_then(hit):
                b.assign(rank, j)
        # Shift down and reinsert at front.
        with b.loop(0, 16) as j:
            idx = b.sub(rank, j)
            moving = b.gt(idx, 0)
            with b.if_then(moving):
                prev = b.load(addr(b, mtf, b.sub(idx, 1)))
                b.store(prev, addr(b, mtf, idx))
        b.store(sym, addr(b, mtf, 0))
        run = b.load(addr(b, rle, b.add(k, 1)))
        b.assign(check, b.add(b.mul(check, 5), b.add(rank, run)))
        b.assign(check, b.and_(check, 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("crafty", "spec_int", "bitboard evaluation with calls",
          has_hand=False)
def build_crafty() -> Module:
    n = 80
    rng = Lcg(103)
    boards = [rng.next() for _ in range(n)]
    b = Builder()
    arr = b.global_array("boards", n, 8, init_i64(boards))
    # popcount(bb): classic bit tricks, called per board.
    p = b.function("popcount", [Type.I64], Type.I64)
    v = b.mov(p[0])
    count = b.mov(0)
    with b.loop(0, 64, name="bit") as _bit:
        nz = b.ne(v, 0)
        with b.if_then(nz):
            b.assign(count, b.add(count, b.and_(v, 1)))
            b.assign(v, b.shr(v, 1))
    b.ret(count)
    # mobility(bb): shifted masks with branches.
    p = b.function("mobility", [Type.I64], Type.I64)
    bb = p[0]
    north = b.and_(b.shl(bb, 8), -1)
    south = b.shr(bb, 8)
    east = b.and_(b.shl(bb, 1), 0xFEFEFEFEFEFEFEFE - (1 << 64))
    west = b.and_(b.shr(bb, 1), 0x7F7F7F7F7F7F7F7F)
    moves = b.or_(b.or_(north, south), b.or_(east, west))
    free = b.and_(moves, b.xor(bb, -1))
    score = b.call("popcount", [free], Type.I64)
    b.ret(score)
    b.function("main", return_type=Type.I64)
    total = b.mov(0)
    with b.loop(0, n) as i:
        board = b.load(addr(b, arr, i))
        material = b.call("popcount", [board], Type.I64)
        mob = b.call("mobility", [board], Type.I64)
        strong = b.gt(material, 32)
        with b.if_then_else(strong) as (then, otherwise):
            with then:
                b.assign(total, b.add(total, b.add(b.mul(material, 3), mob)))
            with otherwise:
                b.assign(total, b.add(total, b.sub(mob, material)))
    b.ret(total)
    return b.module


@register("gcc", "spec_int", "irregular graph walking (compiler-like)",
          has_hand=False)
def build_gcc() -> Module:
    nodes = 200
    rng = Lcg(107)
    # Random DAG: each node has up to 2 successors with opcode payloads.
    succ0 = [0] * nodes
    succ1 = [0] * nodes
    opcode = [rng.below(8) for _ in range(nodes)]
    for i in range(nodes - 1):
        succ0[i] = i + 1 if rng.below(3) else min(nodes - 1, i + 1 + rng.below(5))
        succ1[i] = min(nodes - 1, i + 1 + rng.below(9)) if rng.below(2) else 0
    b = Builder()
    s0 = b.global_array("s0", nodes, 8, init_i64(succ0))
    s1 = b.global_array("s1", nodes, 8, init_i64(succ1))
    ops = b.global_array("ops", nodes, 8, init_i64(opcode))
    value = b.global_array("value", nodes, 8)
    b.function("main", return_type=Type.I64)
    # "Constant propagation" pass: forward walk with per-opcode actions.
    with b.loop(0, 12, name="passes") as _p:
        cur = b.mov(0)
        with b.loop(0, nodes, name="steps") as _s:
            op = b.load(addr(b, ops, cur))
            old = b.load(addr(b, value, cur))
            is_add = b.lt(op, 3)
            with b.if_then_else(is_add) as (then, otherwise):
                with then:
                    b.store(b.add(old, op), addr(b, value, cur))
                with otherwise:
                    is_shift = b.lt(op, 6)
                    with b.if_then_else(is_shift) as (t2, o2):
                        with t2:
                            b.store(b.xor(old, b.shl(op, 2)),
                                    addr(b, value, cur))
                        with o2:
                            b.store(b.sub(old, 1), addr(b, value, cur))
            branch = b.and_(old, 1)
            with b.if_then_else(b.ne(branch, 0)) as (then, otherwise):
                with then:
                    b.assign(cur, b.load(addr(b, s0, cur)))
                with otherwise:
                    alt = b.load(addr(b, s1, cur))
                    taken = b.ne(alt, 0)
                    with b.if_then_else(taken) as (t2, o2):
                        with t2:
                            b.assign(cur, alt)
                        with o2:
                            b.assign(cur, b.load(addr(b, s0, cur)))
    check = b.mov(0)
    with b.loop(0, nodes) as i:
        b.assign(check, b.add(b.mul(check, 3), b.load(addr(b, value, i))))
        b.assign(check, b.and_(check, 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("gzip", "spec_int", "LZ77 window match search", has_hand=False)
def build_gzip() -> Module:
    n = 140
    window = 24
    rng = Lcg(109)
    text = []
    for i in range(n):
        if i > 40 and rng.below(3) == 0:
            start = rng.below(i - 20)
            text.append(text[start])
        else:
            text.append(rng.below(8))
    b = Builder()
    buf = b.global_array("buf", n, 8, init_i64(text))
    b.function("main", return_type=Type.I64)
    check = b.mov(0)
    pos = b.mov(window)
    with b.while_loop(lambda: b.lt(pos, n)):
        best_len = b.mov(0)
        best_off = b.mov(0)
        with b.loop(1, window, name="off") as off:
            cand = b.sub(pos, off)
            length = b.mov(0)
            with b.loop(0, 8, name="m") as m:
                i1 = b.add(pos, m)
                i2 = b.add(cand, m)
                within = b.lt(i1, n)
                with b.if_then(within):
                    a = b.load(addr(b, buf, i1))
                    c = b.load(addr(b, buf, i2))
                    same = b.and_(b.eq(a, c), b.eq(length, m))
                    with b.if_then(same):
                        b.assign(length, b.add(length, 1))
            better = b.gt(length, best_len)
            with b.if_then(better):
                b.assign(best_len, length)
                b.assign(best_off, off)
        b.assign(check, b.add(b.mul(check, 7),
                              b.add(b.mul(best_off, 17), best_len)))
        b.assign(check, b.and_(check, 0xFFFFFFF))
        stride = b.mov(1)
        long_match = b.gt(best_len, 2)
        with b.if_then(long_match):
            b.assign(stride, best_len)
        b.assign(pos, b.add(pos, stride))
    b.ret(check)
    return b.module


@register("mcf", "spec_int", "network-simplex arc scanning", has_hand=False)
def build_mcf() -> Module:
    arcs = 500
    nodes = 64
    rng = Lcg(113)
    tail = [rng.below(nodes) for _ in range(arcs)]
    head = [rng.below(nodes) for _ in range(arcs)]
    cost = [rng.below(100) + 1 for _ in range(arcs)]
    b = Builder()
    t = b.global_array("tail", arcs, 8, init_i64(tail))
    h = b.global_array("head", arcs, 8, init_i64(head))
    c = b.global_array("cost", arcs, 8, init_i64(cost))
    potential = b.global_array("potential", nodes, 8,
                               init_i64(rng.below(50) for _ in range(nodes)))
    b.function("main", return_type=Type.I64)
    total = b.mov(0)
    with b.loop(0, 6, name="iters") as _it:
        # Price-out scan: find most-negative reduced cost arc (pointer-
        # chasing loads dominate, like mcf's pricing loop).
        best = b.mov(0)
        with b.loop(0, arcs) as a:
            ta = b.load(addr(b, t, a))
            ha = b.load(addr(b, h, a))
            ca = b.load(addr(b, c, a))
            pt = b.load(addr(b, potential, ta))
            ph = b.load(addr(b, potential, ha))
            reduced = b.sub(b.add(ca, ph), pt)
            neg = b.lt(reduced, best)
            with b.if_then(neg):
                b.assign(best, reduced)
        # Update potentials along a pseudo-cycle.
        with b.loop(0, nodes) as v:
            pv = b.load(addr(b, potential, v))
            odd = b.and_(v, 1)
            with b.if_then_else(b.ne(odd, 0)) as (then, otherwise):
                with then:
                    b.store(b.sub(pv, best), addr(b, potential, v))
                with otherwise:
                    b.store(b.add(pv, 1), addr(b, potential, v))
        b.assign(total, b.sub(total, best))
    b.ret(total)
    return b.module


@register("parser", "spec_int", "tokenizer + recursive descent",
          has_hand=False)
def build_parser() -> Module:
    n = 300
    rng = Lcg(127)
    # Token stream: 0=num 1=plus 2=times 3=lparen 4=rparen, roughly
    # balanced expressions generated host-side.
    tokens = []
    depth = 0
    while len(tokens) < n:
        r = rng.below(8)
        if r < 3:
            tokens.append(0)
        elif r < 5:
            tokens.append(1 + rng.below(2))
        elif r < 6 and depth < 6:
            tokens.append(3)
            depth += 1
        elif depth > 0:
            tokens.append(4)
            depth -= 1
        else:
            tokens.append(0)
    tokens += [4] * depth
    b = Builder()
    toks = b.global_array("toks", len(tokens), 8, init_i64(tokens))
    total_len = len(tokens)
    b.function("main", return_type=Type.I64)
    # Iterative shunting-yard-ish evaluation with an explicit stack
    # (recursion flattened, as parser's actual hot loops are).
    stack = b.global_array("stack", 64, 8)
    sp = b.mov(0)
    acc = b.mov(1)
    pending = b.mov(0)   # 0 none, 1 plus, 2 times
    check = b.mov(0)
    with b.loop(0, total_len) as i:
        tok = b.load(addr(b, toks, i))
        is_num = b.eq(tok, 0)
        with b.if_then(is_num):
            value = b.add(b.and_(i, 7), 1)
            apply_plus = b.eq(pending, 1)
            with b.if_then_else(apply_plus) as (then, otherwise):
                with then:
                    b.assign(acc, b.add(acc, value))
                with otherwise:
                    apply_times = b.eq(pending, 2)
                    with b.if_then_else(apply_times) as (t2, o2):
                        with t2:
                            b.assign(acc, b.and_(b.mul(acc, value), 0xFFFF))
                        with o2:
                            b.assign(acc, value)
            b.assign(pending, 0)
        is_op = b.and_(b.ge(tok, 1), b.le(tok, 2))
        with b.if_then(is_op):
            b.assign(pending, tok)
        is_open = b.eq(tok, 3)
        with b.if_then(is_open):
            b.store(acc, addr(b, stack, sp))
            b.store(pending, addr(b, stack, b.add(sp, 1)))
            b.assign(sp, b.add(sp, 2))
            b.assign(acc, 0)
            b.assign(pending, 0)
        is_close = b.eq(tok, 4)
        has_frame = b.and_(is_close, b.gt(sp, 0))
        with b.if_then(has_frame):
            b.assign(sp, b.sub(sp, 2))
            outer = b.load(addr(b, stack, sp))
            op = b.load(addr(b, stack, b.add(sp, 1)))
            was_plus = b.eq(op, 1)
            with b.if_then_else(was_plus) as (then, otherwise):
                with then:
                    b.assign(acc, b.add(outer, acc))
                with otherwise:
                    was_times = b.eq(op, 2)
                    with b.if_then_else(was_times) as (t2, o2):
                        with t2:
                            b.assign(acc, b.and_(b.mul(outer, acc), 0xFFFF))
                        with o2:
                            b.assign(acc, b.add(outer, acc))
        b.assign(check, b.and_(b.add(b.mul(check, 3), acc), 0xFFFFFFF))
    b.ret(check)
    return b.module


@register("perlbmk", "spec_int", "string hashing and table ops",
          has_hand=False)
def build_perlbmk() -> Module:
    n = 240
    buckets = 64
    rng = Lcg(131)
    words = [rng.below(1 << 30) for _ in range(n)]
    b = Builder()
    keys = b.global_array("keys", n, 8, init_i64(words))
    table = b.global_array("table", buckets, 8)
    counts = b.global_array("counts", buckets, 8)
    b.function("main", return_type=Type.I64)
    # Hash insert phase (perl-ish multiplicative string hash).
    with b.loop(0, n) as i:
        key = b.load(addr(b, keys, i))
        h = b.mov(5381)
        with b.loop(0, 4, name="byte") as k:
            byte = b.and_(b.shr(key, b.mul(k, 8)), 0xFF)
            b.assign(h, b.and_(b.add(b.mul(h, 33), byte), 0xFFFFFFFF))
        slot = b.and_(h, buckets - 1)
        old = b.load(addr(b, table, slot))
        b.store(b.xor(old, key), addr(b, table, slot))
        cnt = b.load(addr(b, counts, slot))
        b.store(b.add(cnt, 1), addr(b, counts, slot))
    # Scan phase: find heavy buckets (branchy).
    check = b.mov(0)
    with b.loop(0, buckets) as s:
        cnt = b.load(addr(b, counts, s))
        val = b.load(addr(b, table, s))
        heavy = b.gt(cnt, 4)
        with b.if_then_else(heavy) as (then, otherwise):
            with then:
                b.assign(check, b.add(check, b.mul(cnt, 100)))
            with otherwise:
                b.assign(check, b.xor(check, b.and_(val, 0xFFFF)))
    b.ret(check)
    return b.module


@register("twolf", "spec_int", "annealing-style placement swap loop",
          has_hand=False)
def build_twolf() -> Module:
    cells = 48
    rng = Lcg(137)
    b = Builder()
    pos = b.global_array("pos", cells, 8,
                         init_i64(rng.below(64) for _ in range(cells)))
    net_a = b.global_array("net_a", cells, 8,
                           init_i64(rng.below(cells) for _ in range(cells)))
    net_b = b.global_array("net_b", cells, 8,
                           init_i64(rng.below(cells) for _ in range(cells)))
    b.function("main", return_type=Type.I64)
    seed = b.mov(0x1234_5678)
    cost = b.mov(0)
    accepted = b.mov(0)
    with b.loop(0, 400, name="moves") as _m:
        r = emit_lcg_step(b, seed)
        a = b.rem(r, cells)
        c = b.rem(b.shr(r, 8), cells)
        pa = b.load(addr(b, pos, a))
        pc = b.load(addr(b, pos, c))
        # Wire-length delta for the two nets touching each cell.
        na = b.load(addr(b, net_a, a))
        nb = b.load(addr(b, net_b, a))
        pna = b.load(addr(b, pos, na))
        pnb = b.load(addr(b, pos, nb))
        old_a = b.add(_absdiff(b, pa, pna), _absdiff(b, pa, pnb))
        new_a = b.add(_absdiff(b, pc, pna), _absdiff(b, pc, pnb))
        delta = b.sub(new_a, old_a)
        take = b.or_(b.lt(delta, 0), b.eq(b.and_(r, 7), 0))
        with b.if_then(take):
            b.store(pc, addr(b, pos, a))
            b.store(pa, addr(b, pos, c))
            b.assign(cost, b.add(cost, delta))
            b.assign(accepted, b.add(accepted, 1))
    b.ret(b.add(b.mul(accepted, 1000), b.and_(cost, 0xFFFF)))
    return b.module


def _absdiff(b: Builder, x, y):
    d = b.sub(x, y)
    neg = b.lt(d, 0)
    out = b.mov(d)
    with b.if_then(neg):
        b.assign(out, b.sub(0, d))
    return out


@register("vortex", "spec_int", "object-database insert/lookup",
          has_hand=False)
def build_vortex() -> Module:
    capacity = 80
    ops = 200
    rng = Lcg(139)
    b = Builder()
    ids = b.global_array("ids", capacity, 8)
    fields = b.global_array("fields", capacity * 4, 8)
    b.function("main", return_type=Type.I64)
    seed = b.mov(0xDEAD_BEEF)
    count = b.mov(0)
    check = b.mov(0)
    with b.loop(0, ops) as _op:
        r = emit_lcg_step(b, seed)
        key = b.add(b.rem(r, 97), 1)
        is_insert = b.lt(b.and_(r, 3), 2)
        # Linear probe for the key.
        found = b.mov(-1)
        with b.loop(0, capacity) as s:
            v = b.load(addr(b, ids, s))
            hit = b.eq(v, key)
            with b.if_then(hit):
                b.assign(found, s)
        with b.if_then_else(is_insert) as (then, otherwise):
            with then:
                missing = b.and_(b.lt(found, 0), b.lt(count, capacity))
                with b.if_then(missing):
                    b.store(key, addr(b, ids, count))
                    base = b.mul(count, 4)
                    with b.loop(0, 4, name="f") as f:
                        b.store(b.add(b.mul(key, 7), f),
                                addr(b, fields, b.add(base, f)))
                    b.assign(count, b.add(count, 1))
            with otherwise:
                present = b.ge(found, 0)
                with b.if_then(present):
                    base = b.mul(found, 4)
                    total = b.mov(0)
                    with b.loop(0, 4, name="f") as f:
                        b.assign(total, b.add(total, b.load(
                            addr(b, fields, b.add(base, f)))))
                    b.assign(check, b.and_(b.add(check, total), 0xFFFFFFF))
    b.ret(b.add(check, b.mul(count, 10000)))
    return b.module


@register("vpr", "spec_int", "maze-routing wavefront expansion",
          has_hand=False)
def build_vpr() -> Module:
    side = 20
    rng = Lcg(149)
    blocked = [1 if rng.below(5) == 0 else 0 for _ in range(side * side)]
    blocked[0] = 0
    blocked[side * side - 1] = 0
    b = Builder()
    grid = b.global_array("grid", side * side, 8, init_i64(blocked))
    dist = b.global_array("dist", side * side, 8)
    frontier = b.global_array("frontier", side * side * 4, 8)
    b.function("main", return_type=Type.I64)
    inf = 1 << 20
    with b.loop(0, side * side) as i:
        b.store(inf, addr(b, dist, i))
    b.store(0, addr(b, dist, 0))
    b.store(0, addr(b, frontier, 0))
    head = b.mov(0)
    tailp = b.mov(1)
    with b.while_loop(lambda: b.lt(head, tailp)):
        cell = b.load(addr(b, frontier, head))
        b.assign(head, b.add(head, 1))
        d = b.load(addr(b, dist, cell))
        x = b.rem(cell, side)
        y = b.div(cell, side)
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx = b.add(x, dx)
            ny = b.add(y, dy)
            inside = b.and_(b.and_(b.ge(nx, 0), b.lt(nx, side)),
                            b.and_(b.ge(ny, 0), b.lt(ny, side)))
            with b.if_then(inside):
                ncell = b.add(b.mul(ny, side), nx)
                blocked_v = b.load(addr(b, grid, ncell))
                nd = b.load(addr(b, dist, ncell))
                relax = b.and_(b.eq(blocked_v, 0),
                               b.gt(nd, b.add(d, 1)))
                with b.if_then(relax):
                    b.store(b.add(d, 1), addr(b, dist, ncell))
                    room = b.lt(tailp, side * side * 4)
                    with b.if_then(room):
                        b.store(ncell, addr(b, frontier, tailp))
                        b.assign(tailp, b.add(tailp, 1))
    goal = b.load(addr(b, dist, side * side - 1))
    visited = b.mov(0)
    with b.loop(0, side * side) as i:
        d = b.load(addr(b, dist, i))
        reached = b.lt(d, inf)
        with b.if_then(reached):
            b.assign(visited, b.add(visited, 1))
    b.ret(b.add(b.mul(goal, 10000), visited))
    return b.module

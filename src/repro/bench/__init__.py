"""Benchmark suites (Table 2): kernels, VersaBench, EEMBC, SPEC proxies."""

from repro.bench.suites import (
    Benchmark, SIMPLE_BENCHMARKS, all_benchmarks, by_suite, get,
    simple_benchmarks, suite_names,
)

__all__ = [
    "Benchmark",
    "SIMPLE_BENCHMARKS",
    "all_benchmarks",
    "by_suite",
    "get",
    "simple_benchmarks",
    "suite_names",
]

"""Shared helpers for benchmark authoring."""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.ir.builder import Builder
from repro.ir.values import VReg


def init_i64(values: Iterable[int]) -> bytes:
    """Little-endian int64 initializer bytes."""
    out = bytearray()
    for v in values:
        out += struct.pack("<Q", v & ((1 << 64) - 1))
    return bytes(out)


def init_f64(values: Iterable[float]) -> bytes:
    out = bytearray()
    for v in values:
        out += struct.pack("<d", float(v))
    return bytes(out)


class Lcg:
    """Deterministic 64-bit LCG for reproducible synthetic inputs."""

    def __init__(self, seed: int = 0x2545F4914F6CDD1D) -> None:
        self.state = seed & ((1 << 64) - 1)

    def next(self) -> int:
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) \
            & ((1 << 64) - 1)
        return self.state >> 16

    def below(self, bound: int) -> int:
        return self.next() % bound

    def float01(self) -> float:
        return self.next() / float(1 << 48)


def addr(b: Builder, base: int, index, scale_log2: int = 3) -> VReg:
    """Emit address computation base + (index << scale_log2)."""
    return b.add(base, b.shl(index, scale_log2))


def emit_lcg_step(b: Builder, state: VReg) -> VReg:
    """Emit one LCG step updating ``state`` in place; returns a value
    register holding the new 48-bit output."""
    bumped = b.add(b.mul(state, 6364136223846793005), 1442695040888963407)
    b.assign(state, bumped)
    return b.shr(state, 16)

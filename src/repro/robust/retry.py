"""Deterministic retry with capped exponential backoff.

Backoff delays are a pure function of ``(policy, unit, attempt)``: the
jitter is drawn from a :class:`random.Random` seeded with those three
values, never from wall-clock entropy, so a retry schedule replays
byte-identically across runs and the chaos tests can assert exact
delays.  The sleep itself is injectable (tests pass a no-op).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * multiplier**attempt``,
    clamped to ``max_delay``, then scaled by seeded jitter in
    ``[1 - jitter, 1 + jitter]``."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, unit: str = "") -> float:
        """Seconds to wait after failed try number ``attempt`` (0-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        if not self.jitter:
            return raw
        rng = random.Random(f"{self.seed}\0{unit}\0{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def delays(self, unit: str = "") -> List[float]:
        """The full deterministic backoff schedule for one unit."""
        return [self.delay(attempt, unit)
                for attempt in range(max(0, self.max_attempts - 1))]


def call_with_retry(fn: Callable[[int], object], policy: RetryPolicy,
                    unit: str = "",
                    sleep: Callable[[float], None] = time.sleep,
                    on_retry: Optional[Callable[[str, int, BaseException],
                                                None]] = None
                    ) -> Tuple[object, int]:
    """Call ``fn(attempt)`` until it succeeds or attempts run out.

    Returns ``(value, attempts_used)``; re-raises the last exception
    once ``policy.max_attempts`` tries have failed.  ``on_retry`` is
    invoked with ``(unit, attempt, exception)`` before each backoff.
    """
    for attempt in range(policy.max_attempts):
        try:
            return fn(attempt), attempt + 1
        except Exception as exc:
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(unit, attempt, exc)
            sleep(policy.delay(attempt, unit))
    raise RuntimeError("unreachable")  # pragma: no cover

"""Deterministic fault-injection harness (``repro chaos``, chaos tests).

A :class:`FaultPlan` is a picklable, immutable list of faults, each
activated purely by ``(kind, site, attempt)`` — no wall-clock
randomness, so a plan replays identically in workers, in-process
fallbacks, and across test runs.  Fault kinds:

``kill-worker``
    The warm worker process calls ``os._exit`` — the parent sees
    ``BrokenProcessPool``.  Honored only inside pool workers, so the
    in-process serial fallback always survives it.
``flaky-stage``
    The unit raises :class:`InjectedFault` (an ordinary exception).
``slow-stage``
    The unit sleeps ``seconds`` before doing any work — long enough to
    trip a configured stage timeout.
``corrupt-cache-entry``
    Immediately after the store writes an artifact for the matching
    *stage*, the on-disk bytes are garbled; the next load detects the
    corruption and quarantines the entry.
``kill-driver``
    The *driver process itself* is SIGKILLed the moment the matching
    sweep point is claimed — after the claim reaches the journal,
    before any simulation runs.  This is the crash-safety drill: the
    only recovery is ``repro sweep --resume`` in a fresh process, so
    (unlike every other kind) it is honored by
    :func:`apply_driver_fault` in the parent, never by
    :func:`apply_unit_faults` in workers.  Resume invocations must not
    pass the plan again — activation is pure in ``(kind, site,
    attempt)`` and the journal does not count driver deaths, so a
    re-passed plan would simply kill the resumed driver too.

The textual plan format (CLI ``--faults``) is a comma-separated list of
``kind:site[:times[:seconds]]`` entries; ``site`` is a benchmark name
(or stage name for ``corrupt-cache-entry``), ``*`` or empty matches any
site, and ``times`` bounds how many attempts fire the fault (default 1:
attempt 0 only, so the first retry succeeds).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

#: Exit status used by ``kill-worker`` (visible in worker crash logs).
KILL_EXIT_CODE = 87

FAULT_KINDS = ("corrupt-cache-entry", "kill-worker", "slow-stage",
               "flaky-stage", "kill-driver")


class InjectedFault(RuntimeError):
    """A deterministic failure raised by a ``flaky-stage`` fault."""


@dataclass(frozen=True)
class Fault:
    """One injection site: fires while ``attempt < times``."""

    kind: str
    site: str = "*"
    times: int = 1
    seconds: float = 0.0

    def matches(self, kind: str, site: str, attempt: int) -> bool:
        return (self.kind == kind
                and self.site in ("*", site)
                and attempt < self.times)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of faults plus the activation seed.

    The seed participates in the retry backoff of the chaos CLI so one
    ``--seed`` reproduces a whole drill end to end.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind:site[:times[:seconds]],...`` (see module doc)."""
        faults = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            bits = part.split(":")
            kind = bits[0]
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (expected one of "
                    f"{', '.join(FAULT_KINDS)})")
            site = bits[1] if len(bits) > 1 and bits[1] else "*"
            times = int(bits[2]) if len(bits) > 2 else 1
            seconds = float(bits[3]) if len(bits) > 3 else 0.0
            faults.append(Fault(kind, site, times, seconds))
        return cls(tuple(faults), seed)

    def active(self, kind: str, site: str, attempt: int) -> Optional[Fault]:
        """The first fault firing at this ``(kind, site, attempt)``."""
        for fault in self.faults:
            if fault.matches(kind, site, attempt):
                return fault
        return None

    def describe(self) -> str:
        return ", ".join(
            f"{f.kind}:{f.site}:{f.times}"
            + (f":{f.seconds:g}" if f.seconds else "")
            for f in self.faults) or "<no faults>"


def apply_unit_faults(plan: Optional[FaultPlan], unit: str, attempt: int,
                      in_worker: bool) -> None:
    """Fire the per-unit faults that apply to this attempt.

    Called at the top of every warm unit.  ``kill-worker`` is honored
    only when ``in_worker`` — the serial degrade path must survive it.
    """
    if plan is None:
        return
    if in_worker and plan.active("kill-worker", unit, attempt) is not None:
        os._exit(KILL_EXIT_CODE)
    slow = plan.active("slow-stage", unit, attempt)
    if slow is not None:
        time.sleep(slow.seconds or 30.0)
    if plan.active("flaky-stage", unit, attempt) is not None:
        raise InjectedFault(
            f"injected flaky-stage fault for {unit!r} (attempt {attempt})")


def apply_driver_fault(plan: Optional[FaultPlan], site: str,
                       attempt: int = 0) -> None:
    """SIGKILL the current process if a ``kill-driver`` fault fires.

    Called by the sweep engines immediately after a point's claim is
    journaled and fsync'd — the kill therefore lands at the exact
    moment a real crash would be most damaging: point claimed, outcome
    never written.  SIGKILL (not ``os._exit``) so no ``atexit``/
    ``finally`` cleanup can soften the drill.
    """
    if plan is None or plan.active("kill-driver", site, attempt) is None:
        return
    try:
        os.kill(os.getpid(), signal.SIGKILL)
    except (AttributeError, OSError):  # no SIGKILL on this platform
        os._exit(KILL_EXIT_CODE)


def maybe_corrupt(plan: Optional[FaultPlan], stage: str, attempt: int,
                  path: Path) -> bool:
    """Garble a just-written artifact if a corrupt-cache fault fires."""
    if plan is None or plan.active("corrupt-cache-entry", stage,
                                   attempt) is None:
        return False
    size = max(16, path.stat().st_size // 2)
    path.write_bytes(b"\x00" * size)
    return True

"""Fault-tolerant execution layer for the evaluation harness.

The TRIPS prototype recovers from misspeculation by flushing and
refilling blocks atomically; this package gives the *harness* the same
discipline around its own faults: detect, contain, retry or degrade,
and report exactly what happened.

Four pieces, each usable on its own:

* :mod:`repro.robust.errors` — the structured error taxonomy
  (:class:`StageError`, :class:`WorkerCrash`, :class:`StageTimeout`,
  :class:`CacheCorruption`, :class:`SimulationBudgetExceeded`), every
  instance carrying stage/benchmark/digest context.
* :mod:`repro.robust.retry` — :class:`RetryPolicy`, capped exponential
  backoff whose jitter is seeded (never wall-clock random), and
  :func:`call_with_retry`.
* :mod:`repro.robust.report` — :class:`RunReport`, the per-unit outcome
  ledger every ``report``/``run`` invocation fills in.
* :mod:`repro.robust.faults` — :class:`FaultPlan`, the deterministic
  fault-injection harness behind ``repro chaos`` and the chaos tests.
* :mod:`repro.robust.supervise` — :func:`supervise_units`, the generic
  supervised process-pool fan-out shared by the ``report`` warm phase
  and the ``repro.explore`` sweep engine.

See ``docs/ROBUSTNESS.md`` for the full semantics.
"""

from repro.robust.errors import (
    CacheCorruption, RobustError, SimulationBudgetExceeded, StageError,
    StageTimeout, WorkerCrash,
)
from repro.robust.faults import (
    FAULT_KINDS, Fault, FaultPlan, InjectedFault, KILL_EXIT_CODE,
    apply_driver_fault, apply_unit_faults, maybe_corrupt,
)
from repro.robust.report import (
    COMPLETED, DEGRADED, FAILED, RETRIED, RunReport, UnitOutcome,
)
from repro.robust.retry import RetryPolicy, call_with_retry
from repro.robust.supervise import replace_pool, supervise_units

__all__ = [
    "COMPLETED",
    "CacheCorruption",
    "DEGRADED",
    "FAILED",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "RETRIED",
    "RetryPolicy",
    "RobustError",
    "RunReport",
    "SimulationBudgetExceeded",
    "StageError",
    "StageTimeout",
    "UnitOutcome",
    "WorkerCrash",
    "apply_driver_fault",
    "apply_unit_faults",
    "call_with_retry",
    "maybe_corrupt",
    "replace_pool",
    "supervise_units",
]

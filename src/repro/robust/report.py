"""Per-unit outcome ledger for a ``report``/``run``/``chaos`` invocation.

A *unit* is one independently-recoverable piece of work — a benchmark's
warm artifact set, the bandwidth microbenchmarks, one experiment key.
Every unit ends in exactly one status:

``completed``
    Succeeded on the first attempt.
``retried``
    Succeeded after one or more retries (causes list what failed).
``degraded``
    All pooled attempts failed; the in-process serial fallback
    succeeded.  The run is complete but slower than planned.
``failed``
    Every recovery path was exhausted; dependent figures are rendered
    with this unit annotated as missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import runctx

COMPLETED = "completed"
RETRIED = "retried"
DEGRADED = "degraded"
FAILED = "failed"

_STATUS_ORDER = (FAILED, DEGRADED, RETRIED, COMPLETED)


@dataclass
class UnitOutcome:
    """Final status of one unit plus the causes of every failed try."""

    unit: str
    status: str = COMPLETED
    attempts: int = 1
    causes: List[str] = field(default_factory=list)
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"unit": self.unit, "status": self.status,
                "attempts": self.attempts, "causes": list(self.causes),
                "note": self.note}


class RunReport:
    """Aggregates :class:`UnitOutcome` records across one invocation."""

    def __init__(self) -> None:
        self.units: Dict[str, UnitOutcome] = {}
        #: Free-form annotations (e.g. experiments skipped at render
        #: time because a benchmark unit failed).
        self.annotations: List[str] = []
        #: Identity of the invocation this report belongs to, so a
        #: persisted ``report.json`` correlates with the trace JSONL,
        #: sweep points, and BENCH files of the same run.
        self.run: runctx.RunContext = runctx.current()

    # -- recording ---------------------------------------------------------

    def outcome(self, unit: str) -> UnitOutcome:
        return self.units.setdefault(unit, UnitOutcome(unit))

    def record_attempt(self, unit: str, error: BaseException) -> None:
        """One failed try of ``unit``; keeps the cause for the summary."""
        self.outcome(unit).causes.append(
            f"{type(error).__name__}: {error}")

    def resolve(self, unit: str, status: str, attempts: int = 1,
                note: str = "") -> UnitOutcome:
        outcome = self.outcome(unit)
        outcome.status = status
        outcome.attempts = attempts
        if note:
            outcome.note = note
        return outcome

    def annotate(self, message: str) -> None:
        self.annotations.append(message)

    # -- queries -----------------------------------------------------------

    def by_status(self, status: str) -> List[UnitOutcome]:
        return [o for o in self.units.values() if o.status == status]

    @property
    def completed(self) -> List[UnitOutcome]:
        return self.by_status(COMPLETED)

    @property
    def retried(self) -> List[UnitOutcome]:
        return self.by_status(RETRIED)

    @property
    def degraded(self) -> List[UnitOutcome]:
        return self.by_status(DEGRADED)

    @property
    def failed(self) -> List[UnitOutcome]:
        return self.by_status(FAILED)

    @property
    def ok(self) -> bool:
        """True when nothing is missing from the results."""
        return not self.failed and not self.annotations

    @property
    def eventful(self) -> bool:
        """True when there is anything worth printing beyond 'all good'."""
        return bool(self.annotations) or any(
            o.status != COMPLETED for o in self.units.values())

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (persisted as a sweep's ``report.json``
        so a resumed or audited sweep can see exactly what happened)."""
        return {
            "run": self.run.stamp(),
            "units": [o.as_dict() for o in sorted(
                self.units.values(), key=lambda o: o.unit)],
            "annotations": list(self.annotations),
            "counts": {s: len(self.by_status(s)) for s in
                       (COMPLETED, RETRIED, DEGRADED, FAILED)},
            "ok": self.ok,
        }

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        counts = ", ".join(
            f"{len(self.by_status(s))} {s}" for s in
            (COMPLETED, RETRIED, DEGRADED, FAILED))
        lines = [f"run report: {len(self.units)} units — {counts}"]
        ordered = sorted(
            self.units.values(),
            key=lambda o: (_STATUS_ORDER.index(o.status), o.unit))
        for outcome in ordered:
            if outcome.status == COMPLETED and not outcome.causes:
                continue
            line = (f"  {outcome.status:9s} {outcome.unit:16s} "
                    f"{outcome.attempts} attempt(s)")
            if outcome.note:
                line += f"  {outcome.note}"
            lines.append(line)
            for cause in outcome.causes:
                lines.append(f"            - {cause}")
        for message in self.annotations:
            lines.append(f"  annotation: {message}")
        return "\n".join(lines)

"""Structured error taxonomy for the fault-tolerant execution layer.

Every class carries enough machine-readable context (stage, benchmark
unit, digest, attempt count) that a caller can decide to retry, degrade,
quarantine, or report without parsing the message — and the rendered
message itself always names the failing site, so a bare traceback in a
log is already diagnosable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.ir.interp import TrapError


class RobustError(Exception):
    """Base class for harness faults.

    ``context`` is a plain dict of the structured fields; subclasses
    also expose them as attributes.  ``str()`` appends the context so
    the message alone is diagnosable.
    """

    def __init__(self, message: str, **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = context

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(f"{key}={value!r}"
                           for key, value in sorted(self.context.items()))
        return f"{base} [{detail}]"


class StageError(RobustError):
    """A pipeline stage raised while computing one unit's artifacts."""

    def __init__(self, unit: str, cause: BaseException, stage: str = "warm",
                 attempts: int = 1) -> None:
        self.unit = unit
        self.stage = stage
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"stage {stage!r} failed for {unit!r}: "
            f"{type(cause).__name__}: {cause}",
            unit=unit, stage=stage, attempts=attempts)


class WorkerCrash(RobustError):
    """A warm worker process died (e.g. ``BrokenProcessPool``)."""

    def __init__(self, unit: str, attempts: int = 1) -> None:
        self.unit = unit
        self.attempts = attempts
        super().__init__(
            f"worker process died while warming {unit!r}",
            unit=unit, attempts=attempts)


class StageTimeout(RobustError):
    """A warm unit exceeded its per-stage wall-clock budget."""

    def __init__(self, unit: str, seconds: float, attempts: int = 1) -> None:
        self.unit = unit
        self.seconds = seconds
        self.attempts = attempts
        super().__init__(
            f"warming {unit!r} exceeded its {seconds:g}s stage timeout",
            unit=unit, seconds=seconds, attempts=attempts)


class CacheCorruption(RobustError):
    """A cache entry failed to load or verify; it has been quarantined."""

    def __init__(self, stage: str, digest: str, path: str,
                 reason: str) -> None:
        self.stage = stage
        self.digest = digest
        self.path = path
        self.reason = reason
        super().__init__(
            f"corrupt {stage!r} cache entry {digest[:16]}: {reason}",
            stage=stage, digest=digest, path=path, reason=reason)


class SimulationBudgetExceeded(RobustError, TrapError):
    """The cycle-level simulator ran past a configured budget.

    Subclasses :class:`~repro.ir.interp.TrapError` so existing callers
    that guard simulation with ``except TrapError`` keep working, while
    new callers get the full microarchitectural context: the block being
    fetched, how many blocks committed, the current commit cycle, and
    the commit times of the blocks still in flight.
    """

    def __init__(self, kind: str, budget: Any, label: str,
                 blocks_committed: int, cycle: int,
                 window: Tuple[int, ...],
                 elapsed: Optional[float] = None) -> None:
        self.kind = kind
        self.budget = budget
        self.label = label
        self.blocks_committed = blocks_committed
        self.cycle = cycle
        self.window = window
        self.elapsed = elapsed
        message = (f"cycle simulation exceeded its {kind} budget ({budget}) "
                   f"at block {label!r}: {blocks_committed} blocks "
                   f"committed, cycle {cycle}, {len(window)} blocks in "
                   f"flight")
        if elapsed is not None:
            message += f", {elapsed:.1f}s elapsed"
        super().__init__(message, kind=kind, budget=budget, label=label,
                         blocks_committed=blocks_committed, cycle=cycle,
                         window=tuple(window))

"""Generic supervised fan-out over a process pool.

Extracted from the ``report all`` warm phase (PR 3) so any harness that
fans independent *units* of work out to workers — benchmark warming,
design-space sweeps — gets the same recovery discipline:

* pooled retries with capped, seeded exponential backoff;
* per-unit wall-clock timeouts (a hung worker is killed, the pool
  replaced, and only the expired units charged an attempt);
* ``BrokenProcessPool`` recovery (innocent in-flight units resubmitted
  uncharged);
* one in-process serial *degrade* try after pooled attempts are
  exhausted, and only then ``failed``;
* a :class:`~repro.robust.RunReport` outcome for every unit — no unit's
  exception ever aborts the others.

The caller provides two hooks:

``submit(pool, label, attempt) -> Future``
    Submit one unit to the executor.  The submitted callable must be a
    picklable module-level function whose return value is a telemetry
    counter dict (``Telemetry.as_dict()``) or ``None``.
``run_inline(label, attempt) -> counters``
    Run one unit in the current process (the serial path and the
    degrade fallback) — must not honor worker-only faults.

An optional third hook, ``on_outcome(label, outcome)``, fires exactly
once per unit at the moment its :class:`UnitOutcome` becomes terminal
(completed, retried, degraded, or failed) — this is where the sweep
journal records outcomes, so a driver killed mid-run has a durable
record of everything that finished before it died.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.obs import registry as obs_registry
from repro.obs import spans as obs_spans
from repro.robust.errors import StageTimeout, WorkerCrash
from repro.robust.report import COMPLETED, DEGRADED, FAILED, RETRIED, \
    RunReport
from repro.robust.retry import RetryPolicy

#: Seconds between supervisor deadline sweeps when a timeout is set.
_TICK = 0.2


def replace_pool(pool: ProcessPoolExecutor, jobs: int,
                 kill: bool = False) -> ProcessPoolExecutor:
    """Retire a broken/poisoned executor and start a fresh one.

    ``kill`` terminates worker processes first — required when a hung
    worker would otherwise block shutdown forever.
    """
    if kill:
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass
    return ProcessPoolExecutor(max_workers=jobs)


def supervise_units(units: Sequence[str],
                    submit: Callable[[ProcessPoolExecutor, str, int],
                                     "object"],
                    run_inline: Callable[[str, int], object],
                    jobs: int = 1,
                    policy: Optional[RetryPolicy] = None,
                    stage_timeout: Optional[float] = None,
                    telemetry=None,
                    report: Optional[RunReport] = None,
                    progress=None,
                    sleep: Callable[[float], None] = time.sleep,
                    on_outcome=None,
                    ) -> RunReport:
    """Run every unit to a terminal status; returns the filled report.

    ``jobs <= 1`` runs everything through ``run_inline`` (no pool);
    otherwise units are pooled via ``submit``.  ``telemetry`` (a
    :class:`repro.pipeline.observe.Telemetry`, duck-typed to avoid an
    import cycle) receives each successful unit's counter dict.
    """
    report = report if report is not None else RunReport()
    policy = policy or RetryPolicy()
    obs = obs_registry.default_registry()

    def succeed(label: str, attempt: int, counters,
                status: Optional[str] = None) -> None:
        if telemetry is not None and counters:
            telemetry.merge_dict(counters)
        status = status or (RETRIED if attempt else COMPLETED)
        obs.inc(f"supervise.{status}")
        outcome = report.resolve(label, status, attempts=attempt + 1)
        if on_outcome:
            on_outcome(label, outcome)
        if progress:
            progress(label)

    def fail(label: str, attempts: int) -> None:
        obs.inc(f"supervise.{FAILED}")
        outcome = report.resolve(label, FAILED, attempts=attempts)
        if on_outcome:
            on_outcome(label, outcome)
        if progress:
            progress(label)

    def attempt_inline(label: str, attempt: int):
        """One in-process try, spanned when spans are on."""
        if obs_spans.spans_active():
            with obs_spans.span("supervise.attempt", cat="supervise",
                                unit=label, attempt=attempt):
                return run_inline(label, attempt)
        return run_inline(label, attempt)

    def degrade(label: str, attempt: int, error: BaseException) -> None:
        """Pooled attempts exhausted: one in-process serial try."""
        report.record_attempt(label, error)
        try:
            counters = attempt_inline(label, attempt + 1)
        except Exception as exc:
            report.record_attempt(label, exc)
            fail(label, attempts=attempt + 2)
            return
        succeed(label, attempt + 1, counters, status=DEGRADED)

    # -- serial path -------------------------------------------------------
    if jobs <= 1:
        for label in units:
            attempt = 0
            while True:
                try:
                    counters = attempt_inline(label, attempt)
                except Exception as exc:
                    report.record_attempt(label, exc)
                    if attempt + 1 >= policy.max_attempts:
                        fail(label, attempts=attempt + 1)
                        break
                    sleep(policy.delay(attempt, label))
                    attempt += 1
                    continue
                succeed(label, attempt, counters)
                break
        return report

    # -- supervised pool path ----------------------------------------------
    pending = deque((label, 0) for label in units)
    inflight: Dict[object, Tuple[str, int, Optional[float]]] = {}
    pool = ProcessPoolExecutor(max_workers=jobs)

    def pool_submit(label: str, attempt: int) -> None:
        future = submit(pool, label, attempt)
        deadline = (time.monotonic() + stage_timeout) if stage_timeout \
            else None
        inflight[future] = (label, attempt, deadline)

    def retry_or_degrade(label: str, attempt: int,
                         error: BaseException) -> None:
        if attempt + 1 < policy.max_attempts:
            report.record_attempt(label, error)
            sleep(policy.delay(attempt, label))
            pending.append((label, attempt + 1))
        else:
            degrade(label, attempt, error)

    try:
        while pending or inflight:
            while pending and len(inflight) < jobs:
                label, attempt = pending.popleft()
                pool_submit(label, attempt)
            done, _ = wait(set(inflight), timeout=_TICK if stage_timeout
                           else None, return_when=FIRST_COMPLETED)
            crashed = False
            for future in done:
                label, attempt, _deadline = inflight.pop(future)
                try:
                    counters = future.result()
                except BrokenProcessPool:
                    crashed = True
                    retry_or_degrade(label, attempt,
                                     WorkerCrash(label, attempts=attempt + 1))
                except Exception as exc:
                    retry_or_degrade(label, attempt, exc)
                else:
                    succeed(label, attempt, counters)
            if crashed:
                # The executor is poisoned: every in-flight unit was lost
                # with it.  Retire the pool and resubmit them all.
                for future, (label, attempt, _deadline) in \
                        list(inflight.items()):
                    retry_or_degrade(label, attempt,
                                     WorkerCrash(label, attempts=attempt + 1))
                inflight.clear()
                pool = replace_pool(pool, jobs)
                continue
            if stage_timeout:
                now = time.monotonic()
                expired = [future for future, (_l, _a, deadline)
                           in inflight.items()
                           if deadline is not None and now > deadline]
                if expired:
                    # A running future cannot be cancelled: kill the pool,
                    # charge an attempt to the timed-out units only, and
                    # resubmit the innocent in-flight units as they were.
                    for future in expired:
                        label, attempt, _deadline = inflight.pop(future)
                        retry_or_degrade(
                            label, attempt,
                            StageTimeout(label, seconds=stage_timeout,
                                         attempts=attempt + 1))
                    for future, (label, attempt, _deadline) in \
                            list(inflight.items()):
                        pending.appendleft((label, attempt))
                    inflight.clear()
                    pool = replace_pool(pool, jobs, kill=True)
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    return report

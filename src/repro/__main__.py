"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — enumerate the benchmark suites (Table 2).
* ``run BENCH`` — compile and execute one benchmark on a chosen system
  (``--system interp|risc|trips|cycles|ideal|core2|p4|p3``) and print its
  statistics.
* ``asm BENCH`` — print the compiled TRIPS assembly (``--block`` to pick
  one block).
* ``report EXPERIMENT`` — regenerate a paper table/figure by key
  (``report --list`` shows the keys; ``report all`` runs everything;
  ``--jobs N`` fans the simulations out over N worker processes;
  ``--heatmaps`` appends trace-derived OPN heatmaps for the kernels).
* ``trace BENCH`` — run the cycle-level simulator with
  microarchitectural event tracing and render the derived views (OPN
  link-utilization heatmap, window-occupancy timeline, per-tile issue
  histogram); ``--out FILE`` writes the compact event stream
  (``docs/TRACE.md`` documents the schema and format).
* ``chaos BENCH`` — fault-injection drill: warm the benchmark's
  artifacts under an injected ``--faults`` plan, then verify and heal
  the cache; prints the run report and any quarantine incidents
  (``docs/ROBUSTNESS.md`` documents the plan format and semantics).
  ``chaos --sweep SPEC`` instead SIGKILLs a subprocess sweep
  mid-journal (the ``kill-driver`` fault), resumes it, and asserts the
  records match an uninterrupted run — the crash-safety drill.
* ``sweep SPEC`` — design-space exploration: expand a declarative
  sweep spec (named preset or JSON/TOML file) into a validated grid of
  design points, simulate them under supervision (``--jobs N``,
  cache-resumable, failed points become annotated holes), and write
  per-point JSONL, a per-axis sensitivity table, a Pareto frontier
  CSV, a markdown summary, the fsync'd execution journal, and an
  attested repro pack (``docs/SWEEP.md``).  A killed sweep resumes
  with ``--resume``; ``--shards N --shard-id K`` runs one
  lease-coordinated shard of the grid with work stealing.
* ``frontier SWEEP_DIR`` — re-analyze a finished sweep directory:
  print the (IPC, cost) Pareto frontier without re-simulating.
* ``pack verify|create SWEEP_DIR`` — attest or audit a sweep
  directory against its checksummed ``pack.json`` manifest.
* ``perf run|compare|list`` — host-performance benchmark harness:
  time the simulators' hot paths with calibrated repetition and write
  a schema-versioned ``BENCH_<YYYYMMDD>.json``; compare two BENCH
  files for regressions against warn/fail thresholds
  (``docs/PERF.md`` documents the schema, the baseline workflow, and
  the exit codes).

Pipeline options (on ``run``, ``asm``, and ``report``):

* ``--cache-dir PATH`` — artifact store location (default:
  ``.repro-cache/`` at the repo root, or ``$REPRO_CACHE_DIR``).
* ``--no-cache`` — disable the on-disk store for this invocation.
* ``--trace FILE`` — append one JSON line per pipeline event (stage,
  hit/miss, wall time) to FILE.
* ``--profile`` — print a per-stage hit/miss/latency summary afterwards.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_list(_args, _runner) -> int:
    from repro.bench import all_benchmarks
    rows = sorted(all_benchmarks(), key=lambda b: (b.suite, b.name))
    current = None
    for bench in rows:
        if bench.suite != current:
            current = bench.suite
            print(f"\n{current}")
            print("-" * len(current))
        hand = " [+hand]" if bench.has_hand else ""
        print(f"  {bench.name:14s} {bench.description}{hand}")
    return 0


def _cmd_run(args, runner) -> int:
    """One benchmark on one system, with a run report on failure.

    Any simulation/cache fault surfaces as a one-unit
    :class:`~repro.robust.RunReport` (cause included) instead of a bare
    traceback.
    """
    from repro.robust import FAILED, RunReport

    try:
        return _run_system(args, runner)
    except Exception as exc:
        report = RunReport()
        report.record_attempt(args.benchmark, exc)
        report.resolve(args.benchmark, FAILED, attempts=1,
                       note=f"system={args.system}, variant={args.variant}")
        print(report.render(), file=sys.stderr)
        return 1


def _config_overrides(args):
    """``--config KEY=VALUE`` overrides, validated for the target system.

    Returns ``(config, ideal_params)``: a :class:`TripsConfig` (or
    ``None``) for ``cycles``, a ``(window, dispatch_cost)`` pair (or
    ``None``) for ``ideal``.  Parsed through the sweep spec validator
    (:mod:`repro.explore.spec`) so single-point what-if runs and sweeps
    share one override code path.
    """
    from repro.explore.spec import IDEAL_AXES, SpecError, parse_overrides

    items = getattr(args, "config", None)
    if not items:
        return None, None
    system = args.system
    if system not in ("cycles", "ideal"):
        raise SpecError(
            f"--config only applies to --system cycles or ideal "
            f"(got {system!r})")
    if system == "ideal":
        overrides = parse_overrides(items, system="ideal")
        return None, (overrides.get("window", IDEAL_AXES["window"][0]),
                      overrides.get("dispatch_cost",
                                    IDEAL_AXES["dispatch_cost"][0]))
    from repro.uarch.config import ConfigError, TripsConfig

    overrides = parse_overrides(items, system="cycles")
    try:
        return TripsConfig(**overrides).validate(), None
    except ConfigError as exc:
        raise SpecError(str(exc)) from None


def _run_system(args, runner) -> int:
    from repro.explore.spec import SpecError

    name = args.benchmark
    variant = args.variant
    system = args.system
    try:
        config, ideal_params = _config_overrides(args)
    except SpecError as exc:
        print(f"bad --config override: {exc}", file=sys.stderr)
        return 2
    golden = runner.expected(name)
    print(f"{name} ({system}, {variant}): golden checksum {golden}")

    if system == "interp":
        from repro.ir import run_module
        result, interp = run_module(runner.module(name))
        print(f"result {result}; {interp.stats.executed} IR instructions, "
              f"{interp.stats.loads} loads, {interp.stats.stores} stores")
    elif system == "risc":
        stats = runner.powerpc(name)
        print(f"{stats.executed} instructions "
              f"({stats.loads} loads, {stats.stores} stores, "
              f"{stats.register_reads}+{stats.register_writes} register "
              f"accesses)")
    elif system == "trips":
        stats = runner.trips_functional(name, variant)
        blocks = max(stats.blocks_committed, 1)
        print(f"{stats.blocks_committed} blocks, avg size "
              f"{stats.fetched / blocks:.1f}; fetched {stats.fetched}, "
              f"executed {stats.executed}, useful {stats.useful}, "
              f"moves {stats.moves_executed}, mispredicated "
              f"{stats.fetched_not_executed}")
    elif system == "cycles":
        if args.uarch_trace:
            stats, sim = _traced_cycles(runner, name, variant,
                                        args.uarch_trace, config)
        else:
            stats, sim = runner.trips_cycles(name, variant, config)
        print(f"{stats.cycles} cycles, IPC {stats.ipc:.2f} "
              f"(useful {stats.useful_ipc:.2f}); "
              f"{stats.avg_instructions_in_window:.0f} instructions in "
              f"flight; {sim.opn.stats.average_hops():.2f} avg OPN hops; "
              f"{stats.branch_mispredictions} branch mispredictions, "
              f"{stats.icache_misses} I-cache misses, "
              f"{stats.load_flushes} load flushes")
    elif system == "ideal":
        if ideal_params is not None:
            window, dispatch_cost = ideal_params
            stats = runner.ideal(name, variant, window=window,
                                 dispatch_cost=dispatch_cost)
            print(f"ideal {window}/{dispatch_cost}-cycle dispatch: "
                  f"{stats.cycles} cycles, IPC {stats.ipc:.2f}")
        else:
            stats = runner.ideal(name, variant)
            big = runner.ideal(name, variant, window=128 * 1024,
                               dispatch_cost=0)
            print(f"ideal 1K/8-cycle dispatch: {stats.cycles} cycles, "
                  f"IPC {stats.ipc:.2f}; ideal 128K/0: IPC {big.ipc:.2f}")
    elif system in ("core2", "p4", "p3"):
        level = "ICC" if args.icc else "O2"
        stats = runner.platform(name, system, level)
        print(f"{stats.cycles} cycles, IPC {stats.ipc:.2f}, "
              f"{stats.branch_mispredictions} branch mispredictions "
              f"({level})")
    else:
        print(f"unknown system {system!r}", file=sys.stderr)
        return 2
    return 0


def _traced_cycles(runner, name: str, variant: str, out_path: str,
                   config=None):
    """Live cycle-level run with tracing; writes the compact stream.

    Bypasses the ``trips-cycles`` artifact cache (the raw event stream
    is not cached) but still reuses the lowering stages and validates
    the result against the interpreter checksum.
    """
    import sys as _sys

    from repro.trace import CollectingTracer, write_compact
    from repro.uarch import run_cycles

    lowered = runner.trips_lowered(name, variant)
    tracer = CollectingTracer()
    result, sim = run_cycles(lowered, config=config, tracer=tracer)
    runner.pipeline.check(name, result, f"uarch-trace/{variant}")
    count = write_compact(tracer.events, out_path)
    print(f"wrote {count} events to {out_path}", file=_sys.stderr)
    return sim.stats, sim


def _cmd_trace(args, runner) -> int:
    from repro.trace import (
        CollectingTracer, render_event_counts, render_occupancy_timeline,
        render_opn_heatmap, render_tile_histogram, summarize, write_compact,
    )
    from repro.uarch import run_cycles

    name = args.benchmark
    lowered = runner.trips_lowered(name, args.variant)
    tracer = CollectingTracer()
    result, sim = run_cycles(lowered, tracer=tracer)
    runner.pipeline.check(name, result, f"trace/{args.system}")

    stats = sim.stats
    print(f"{name} ({args.system}, {args.variant}): {stats.cycles} cycles, "
          f"IPC {stats.ipc:.2f}, {len(tracer.events)} events")
    metrics = summarize(tracer.events, stats.cycles, buckets=args.buckets)
    print()
    print(render_event_counts(metrics))
    print()
    print(render_opn_heatmap(metrics))
    print()
    print(render_occupancy_timeline(metrics))
    print()
    print(render_tile_histogram(metrics))
    if args.out:
        count = write_compact(tracer.events, args.out)
        print(f"\nwrote {count} events to {args.out}")
    return 0


def _cmd_asm(args, runner) -> int:
    from repro.isa import format_block, format_program

    lowered = runner.trips_lowered(args.benchmark, args.variant)
    if args.block:
        for block in lowered.program.all_blocks():
            if block.label == args.block:
                print(format_block(block))
                return 0
        print(f"no block named {args.block!r}", file=sys.stderr)
        return 2
    print(format_program(lowered.program))
    return 0


def _cmd_report(args, runner) -> int:
    from repro.eval import experiment_names, run_experiment
    from repro.robust import RetryPolicy, RunReport

    if args.list:
        for key in experiment_names():
            print(key)
        return 0
    keys = experiment_names() if args.experiment == "all" \
        else [args.experiment]
    report = RunReport()

    if args.jobs > 1:
        if runner.pipeline.store is None:
            print("--jobs requires the artifact cache "
                  "(drop --no-cache / REPRO_CACHE=0)", file=sys.stderr)
            return 2
        from repro.pipeline.parallel import report_plan, warm_benchmarks
        benchmarks, trace_names, bandwidth = report_plan(keys)
        if benchmarks or bandwidth:
            cache_root = runner.pipeline.store.base
            warm_benchmarks(
                benchmarks, cache_root, jobs=args.jobs,
                trace_names=trace_names, bandwidth=bandwidth,
                telemetry=runner.pipeline.telemetry,
                policy=RetryPolicy(max_attempts=args.retries + 1),
                stage_timeout=args.stage_timeout, report=report,
                progress=lambda label: print(f"warmed {label}",
                                             file=sys.stderr))

    # Render every figure we can: a failed benchmark unit (or a driver
    # error) annotates that experiment instead of aborting the run.
    for key in keys:
        try:
            rendered = run_experiment(key, runner=runner)
        except Exception as exc:
            message = f"{key}: {type(exc).__name__}: {exc}"
            report.annotate(message)
            print(f"[{key} unavailable: {type(exc).__name__}: {exc}]")
            print()
            continue
        print(rendered)
        print()

    if report.eventful:
        print(report.render())

    if args.heatmaps:
        from repro.bench import by_suite
        from repro.trace import render_occupancy_timeline, render_opn_heatmap

        for bench in sorted(by_suite("kernels"), key=lambda b: b.name):
            metrics = runner.trace_summary(bench.name, "compiled")
            print(f"=== {bench.name} (compiled) ===")
            print(render_opn_heatmap(metrics))
            print(render_occupancy_timeline(metrics))
            print()
    return 0 if report.ok else 1


def _chaos_sweep_drill(args, runner, plan) -> int:
    """The kill->resume determinism drill behind ``chaos --sweep``.

    1. Run the sweep in a **subprocess** with the fault plan: a
       ``kill-driver`` fault SIGKILLs it the instant the matching
       point's claim hits the journal (a dead driver must really die —
       in-process simulation of a SIGKILL would prove nothing).
    2. Resume the same directory in this process — *without* the
       plan, as a real operator would (activation is pure, so passing
       it again would simply kill the resumed driver too).
    3. Run an uninterrupted reference sweep into a sibling directory
       sharing the same cache, and assert record-for-record equality
       modulo run ids, plus a clean ``pack verify``.
    """
    import subprocess
    from pathlib import Path

    import repro
    from repro.explore import (
        load_spec, preset_names, preset_spec, read_journal, records_equal,
        run_sweep, verify_pack,
    )
    from repro.explore.journal import JOURNAL_FILE
    from repro.explore.spec import SpecError

    try:
        spec = preset_spec(args.sweep_spec) \
            if args.sweep_spec in preset_names() \
            else load_spec(args.sweep_spec)
    except (SpecError, FileNotFoundError) as exc:
        print(f"bad --sweep spec: {exc}", file=sys.stderr)
        return 2
    cache_dir = runner.pipeline.store.base
    out_dir = Path(args.out) if args.out else \
        Path("sweeps") / f"chaos-{spec.name}"

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                      else []))
    # Serial execution (--jobs 1): the SIGKILL must not orphan pool
    # workers, and the claim order must be deterministic.
    cmd = [sys.executable, "-m", "repro", "sweep", args.sweep_spec,
           "--out", str(out_dir), "--cache-dir", str(cache_dir),
           "--jobs", "1", "--faults", args.faults,
           "--seed", str(args.seed)]
    print(f"chaos sweep drill: {spec.name} under [{plan.describe()}]",
          file=sys.stderr)
    print(f"  [1/3] driver: {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                          timeout=600)
    killed = proc.returncode < 0 or proc.returncode == 137
    has_kill = any(f.kind == "kill-driver" for f in plan.faults)
    if has_kill and not killed:
        print(f"  drill FAILED: kill-driver fault never fired "
              f"(driver exited {proc.returncode})", file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        return 1
    print(f"  driver terminated: returncode {proc.returncode}"
          + (" (killed)" if killed else ""), file=sys.stderr)

    state = read_journal(out_dir / JOURNAL_FILE)
    terminal = len(state.outcomes)
    print(f"  [2/3] resuming: {terminal} terminal outcome(s) in the "
          f"journal", file=sys.stderr)
    resumed = run_sweep(spec, cache_dir, out_dir, resume=True,
                        telemetry=runner.pipeline.telemetry)
    print(f"  {resumed.summary_line()}", file=sys.stderr)

    print(f"  [3/3] uninterrupted reference sweep", file=sys.stderr)
    ref_dir = out_dir.parent / (out_dir.name + "-ref")
    reference = run_sweep(spec, cache_dir, ref_dir,
                          telemetry=runner.pipeline.telemetry)

    problems = []
    if resumed.replayed != terminal:
        problems.append(
            f"resume replayed {resumed.replayed} point(s) but the "
            f"journal held {terminal} terminal outcome(s) — "
            f"journal-terminal points were re-executed")
    if not records_equal(resumed.records, reference.records):
        problems.append("resumed records differ from the uninterrupted "
                        "sweep's (beyond run ids)")
    problems.extend(f"pack: {p}" for p in verify_pack(out_dir))
    if problems:
        print("chaos sweep drill FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"chaos sweep drill ok: killed at claim, resumed "
          f"{len(resumed.records)} records byte-identical to the "
          f"uninterrupted sweep (modulo run ids); pack verifies")
    return 0


def _cmd_chaos(args, runner) -> int:
    from repro.pipeline.parallel import warm_benchmarks
    from repro.robust import FaultPlan, RetryPolicy, RunReport

    if runner.pipeline.store is None:
        print("chaos requires the artifact cache "
              "(drop --no-cache / REPRO_CACHE=0)", file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.parse(args.faults, seed=args.seed)
    except ValueError as exc:
        print(f"bad --faults plan: {exc}", file=sys.stderr)
        return 2
    if (args.benchmark is None) == (args.sweep_spec is None):
        print("chaos needs exactly one target: a benchmark, or "
              "--sweep SPEC", file=sys.stderr)
        return 2
    if args.sweep_spec is not None:
        return _chaos_sweep_drill(args, runner, plan)
    policy = RetryPolicy(max_attempts=args.retries + 1, seed=args.seed)
    report = RunReport()
    cache_root = runner.pipeline.store.base
    include = ("expected", "cycles")

    print(f"chaos drill: {args.benchmark} under [{plan.describe()}], "
          f"jobs={args.jobs}, retries={args.retries}", file=sys.stderr)
    warm_benchmarks([args.benchmark], cache_root, jobs=args.jobs,
                    include=include, faults=plan, policy=policy,
                    stage_timeout=args.stage_timeout,
                    telemetry=runner.pipeline.telemetry, report=report,
                    progress=lambda label: print(f"warmed {label}",
                                                 file=sys.stderr))
    # Verification pass, fault-free and in-process: loading every
    # artifact heals any corruption the plan injected (corrupt entries
    # are quarantined and recomputed).
    warm_benchmarks([args.benchmark], cache_root, jobs=1, include=include,
                    telemetry=runner.pipeline.telemetry)

    print(report.render())
    incidents = runner.incidents()
    if incidents:
        print(f"quarantine: {len(incidents)} incident(s)")
        for record in incidents:
            print(f"  {record['stage']}  {record['digest'][:16]}  "
                  f"{record['reason']}")
    return 0 if report.ok else 1


def _resolve_sweep_spec(args):
    """The validated spec of a ``sweep`` invocation (preset name or
    JSON/TOML file), with ``--points`` / ``--benchmarks`` applied."""
    from repro.explore import load_spec, preset_names, preset_spec
    from repro.explore.spec import SpecError, parse_axis_points

    if args.spec is None:
        raise SpecError(
            f"no sweep spec given (presets: {', '.join(preset_names())}, "
            f"or a .json/.toml file)")
    if args.spec in preset_names():
        spec = preset_spec(args.spec)
    else:
        spec = load_spec(args.spec)
    if args.points:
        spec = spec.with_axes(parse_axis_points(args.points, spec.system))
    if args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        spec = spec.with_benchmarks(names)
    return spec


def _cmd_sweep(args, runner) -> int:
    from pathlib import Path

    from repro.explore import (
        JournalError, expand, preset_names, preset_spec, run_sweep,
        run_sweep_batched,
    )
    from repro.explore.spec import SpecError
    from repro.robust import FaultPlan, RetryPolicy

    if args.list_presets:
        for name in preset_names():
            spec = preset_spec(name)
            print(f"{name:18s} {spec.point_count():4d} points  "
                  f"{spec.description}")
        return 0
    if runner.pipeline.store is None:
        print("sweep requires the artifact cache "
              "(drop --no-cache / REPRO_CACHE=0)", file=sys.stderr)
        return 2
    try:
        spec = _resolve_sweep_spec(args)
        points = expand(spec)
    except SpecError as exc:
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2
    if args.batch and (args.faults or args.jobs != 1):
        print("--batch runs all points in this process: it cannot "
              "combine with --jobs or --faults", file=sys.stderr)
        return 2
    if args.batch and args.shards:
        print("--shards coordinates supervised drivers: it cannot "
              "combine with --batch", file=sys.stderr)
        return 2
    if args.shard_id is not None and not args.shards:
        print("--shard-id requires --shards", file=sys.stderr)
        return 2
    if args.no_steal and args.shard_id is None:
        print("--no-steal requires --shard-id (a preferred shard to "
              "stop after)", file=sys.stderr)
        return 2
    faults = None
    if args.faults:
        try:
            faults = FaultPlan.parse(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"bad --faults plan: {exc}", file=sys.stderr)
            return 2

    out_dir = Path(args.out) if args.out else Path("sweeps") / spec.name
    if args.shards:
        mode = f"shards={args.shards}" + (
            f" shard-id={args.shard_id}" if args.shard_id is not None
            else "")
    else:
        mode = "batch" if args.batch else f"jobs={args.jobs}"
    print(f"sweep {spec.name}: {len(points)} points over "
          f"{len(spec.benchmarks)} benchmark(s) x "
          f"{' x '.join(f'{name}[{len(values)}]' for name, values in spec.axes)}"
          f", {mode}", file=sys.stderr)
    policy = RetryPolicy(max_attempts=args.retries + 1,
                         seed=args.seed if args.faults else 0)
    progress = lambda label: print(f"done {label}", file=sys.stderr)
    try:
        if args.shards:
            from repro.explore import run_sweep_sharded
            from repro.explore.shard import DEFAULT_TTL

            sharded = run_sweep_sharded(
                spec, cache_dir=runner.pipeline.store.base,
                out_dir=out_dir, shards=args.shards,
                shard_id=args.shard_id, steal=not args.no_steal,
                jobs=args.jobs, policy=policy,
                stage_timeout=args.stage_timeout,
                telemetry=runner.pipeline.telemetry, progress=progress,
                ttl=args.lease_ttl or DEFAULT_TTL)
            print(sharded.summary_line())
            if sharded.merged is None:
                return 0       # progressed; another driver will merge
            result = sharded.merged
        elif args.batch:
            result = run_sweep_batched(
                spec, cache_dir=runner.pipeline.store.base,
                out_dir=out_dir, resume=args.resume,
                telemetry=runner.pipeline.telemetry, progress=progress)
            print(result.summary_line())
        else:
            result = run_sweep(
                spec, cache_dir=runner.pipeline.store.base,
                out_dir=out_dir, jobs=args.jobs, policy=policy,
                stage_timeout=args.stage_timeout, faults=faults,
                telemetry=runner.pipeline.telemetry, progress=progress,
                resume=args.resume)
            print(result.summary_line())
    except JournalError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2

    names = ", ".join(sorted(p.name for p in result.artifacts.values()))
    print(f"wrote {result.out_dir}/{{{names}}}")
    if result.report.eventful:
        print(result.report.render())
    return 0 if result.ok else 1


def _cmd_pack(args, _runner) -> int:
    from repro.explore.pack import PackError, verify_pack, write_pack

    if args.pack_command == "create":
        path = write_pack(args.sweep_dir)
        print(f"wrote {path}")
        return 0
    try:
        problems = verify_pack(args.sweep_dir)
    except PackError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if problems:
        print(f"pack verify FAILED: {args.sweep_dir}")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"pack verify ok: {args.sweep_dir}")
    return 0


def _cmd_frontier(args, _runner) -> int:
    from repro.explore.analyze import (
        aggregate_configs, load_points, load_spec_json, pareto_frontier,
        sensitivity_rows,
    )
    from repro.eval.report import format_table

    try:
        records = load_points(args.sweep_dir)
        spec = load_spec_json(args.sweep_dir)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = pareto_frontier(aggregate_configs(records))
    axes = sorted({name for row in rows for name in row["settings"]})
    headers = axes + ["cost", "area mm2", "IPC", "IPC/mm2", "holes",
                      "frontier"]
    table_rows = [
        [row["settings"].get(a, "") for a in axes]
        + [row["cost"], round(row["area_mm2"], 1),
           round(row["ipc_geomean"], 3), round(row["ipc_per_area"], 4),
           row["holes"], "*" if row["on_frontier"] else ""]
        for row in rows]
    print(format_table(
        f"Pareto frontier — sweep {spec.name!r} ({len(records)} points)",
        headers, table_rows,
        "cost = window slots x ETs (cycles) or window (ideal); "
        "area is the repro.uarch.area estimate; "
        "* = on the (IPC, cost) frontier."))
    print()
    base_rows = sensitivity_rows(spec, records)
    if base_rows:
        headers = ["axis", "value", "IPC", "delta", "delta %"]
        table = [[r["axis"],
                  f"{r['value']}{' *' if r['baseline'] else ''}",
                  round(r["ipc_geomean"], 3),
                  f"{r['delta_ipc']:+.3f}", f"{r['delta_pct']:+.1f}"]
                 for r in base_rows]
        print(format_table(
            "Per-axis sensitivity (other axes at baseline)",
            headers, table, "* = baseline value."))
    return 0


def _cmd_perf(args, _runner) -> int:
    from repro import perf

    if args.perf_command == "list":
        for spec in perf.default_suite():
            print(f"{spec.name:16s} [{spec.group}] {spec.description}")
        return 0
    if args.perf_command == "compare":
        return _perf_compare(args)
    return _perf_run(args)


def _perf_run(args) -> int:
    from repro import perf, runctx

    try:
        specs = perf.default_suite(
            [n.strip() for n in args.only.split(",") if n.strip()]
            if args.only else None,
            kernel_backend=args.kernel_backend)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    repeats = args.repeats if args.repeats is not None \
        else (3 if args.quick else 7)
    warmup = args.warmup if args.warmup is not None \
        else (1 if args.quick else 2)

    context = runctx.current()
    print(f"perf run {context.run_id}: {len(specs)} benchmark(s), "
          f"{warmup} warmup + {repeats} timed repeats"
          f"{' (quick)' if args.quick else ''}", file=sys.stderr)
    results = []
    for spec in specs:
        result = perf.measure(spec, repeats=repeats, warmup=warmup)
        results.append(result)
        print(f"  {result.name:16s} median {result.median_s * 1000:9.2f} ms"
              f"  +-{result.mad_s * 1000:7.3f} ms MAD"
              f"  (min {result.min_s * 1000:.2f}, "
              f"rss {result.peak_rss_kb} KB)", file=sys.stderr)

    payload = perf.bench_payload(results, quick=args.quick,
                                 context=context)
    path = perf.write_bench(payload, args.out)
    print(f"wrote {path}")

    from repro.obs import annotate_run
    annotate_run(label="perf run" + (" --quick" if args.quick else ""),
                 artifacts={"bench": str(path)},
                 benchmarks=len(results),
                 medians_ms={result.name: round(result.median_s * 1e3, 3)
                             for result in results})

    if args.profile_hotspots:
        from repro.eval.report import format_table
        for spec in specs:
            rows = perf.hotspots(spec, top=args.profile_hotspots)
            print()
            print(format_table(
                f"Hotspots — {spec.name} (top {args.profile_hotspots} "
                f"by cumulative time)",
                ["calls", "tottime s", "cumtime s", "function"],
                [[calls, f"{tot:.4f}", f"{cum:.4f}", where]
                 for calls, tot, cum, where in rows],
                "one profiled run; not comparable with the calibrated "
                "medians above."))
    return 0


def _perf_compare(args) -> int:
    from repro import perf

    try:
        base = perf.load_bench(args.base)
        new = perf.load_bench(args.new)
    except (OSError, ValueError) as exc:
        print(f"perf compare: {exc}", file=sys.stderr)
        return 2
    rows = perf.compare_payloads(base, new, warn_pct=args.warn_pct,
                                 fail_pct=args.fail_pct,
                                 noise_mads=args.noise_mads)
    base_run = (base.get("run") or {}).get("run_id", "")
    new_run = (new.get("run") or {}).get("run_id", "")
    print(perf.render_comparison(rows, str(args.base), str(args.new),
                                 base_run_id=base_run,
                                 new_run_id=new_run))
    code = perf.exit_code(rows)
    verdict = {perf.EXIT_OK: "ok", perf.EXIT_WARN: "WARN",
               perf.EXIT_REGRESSION: "REGRESSION"}[code]
    print(f"\nverdict: {verdict} (exit {code})")

    from repro.obs import annotate_run
    annotate_run(label="perf compare", outcome=verdict.lower(),
                 artifacts={"base": str(args.base),
                            "new": str(args.new)},
                 base_run_id=base_run, new_run_id=new_run)
    return code


def _cmd_runs(args, _runner) -> int:
    import json as _json

    from repro.obs import RunIndex, default_index_path

    path = default_index_path(args.cache_dir)
    if not path.exists() and args.runs_command != "compact":
        print(f"runs: no index at {path} (nothing recorded yet)",
              file=sys.stderr)
        return 1
    index = RunIndex(path)
    try:
        if args.runs_command == "list":
            rows = index.query(limit=args.limit)
            if not rows:
                print("runs: index is empty", file=sys.stderr)
                return 1
            from repro.eval.report import format_table
            import time as _time
            table = [[row["id"],
                      _time.strftime("%m-%d %H:%M:%S",
                                     _time.localtime(row["started"])),
                      row["kind"], row["label"] or "-", row["outcome"],
                      f"{row['wall_s']:.2f}", row["run_id"]]
                     for row in rows]
            print(format_table(
                f"Run index — {path}",
                ["id", "started", "kind", "label", "outcome", "wall s",
                 "run id"],
                table, "newest first; `repro runs show <id>` for the "
                       "full row."))
            return 0
        if args.runs_command == "show":
            row = index.get(args.id)
            if row is None:
                print(f"runs: no row with id {args.id}", file=sys.stderr)
                return 1
            print(_json.dumps(row, indent=2, sort_keys=True))
            return 0
        if args.runs_command == "compact":
            max_age_s = args.max_age_days * 86400.0 \
                if args.max_age_days is not None else None
            removed = index.compact(keep=args.keep, max_age_s=max_age_s)
            print(f"runs: dropped {removed} row(s), "
                  f"{index.count()} kept")
            return 0
        import time as _time
        since = (_time.time() - args.since_s) \
            if args.since_s is not None else None
        rows = index.query(kind=args.kind, run_id=args.run_id,
                           outcome=args.outcome, label_like=args.label,
                           since=since, limit=args.limit)
        for row in rows:
            print(_json.dumps(row, sort_keys=True))
        if not rows:
            print("runs: no rows match the query", file=sys.stderr)
            return 1
        return 0
    finally:
        index.close()


def _cmd_spans(args, _runner) -> int:
    from pathlib import Path

    from repro.obs import export_chrome

    source = Path(args.source)
    if not source.exists():
        print(f"spans: no such file: {source}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out \
        else source.with_suffix(".trace.json")
    count = export_chrome(source, out)
    print(f"wrote {out} ({count} span event(s))")
    return 0 if count else 1


def _cmd_config(args, _runner) -> int:
    # args.config_command is always "show" today (argparse enforces it);
    # the sub-subcommand exists so `repro config diff` etc. can slot in.
    import dataclasses

    from repro.explore.spec import SpecError, parse_overrides
    from repro.pipeline.keys import config_digest
    from repro.uarch import components
    from repro.uarch.area import estimate_area
    from repro.uarch.config import ConfigError, TripsConfig

    try:
        overrides = parse_overrides(args.config or [], system="cycles")
        config = TripsConfig(**overrides).validate()
    except (SpecError, ConfigError) as exc:
        print(f"bad --config override: {exc}", file=sys.stderr)
        return 2

    defaults = TripsConfig()
    print(f"TripsConfig (digest {config_digest(config)})")
    print()
    marked = False
    for field in dataclasses.fields(TripsConfig):
        value = getattr(config, field.name)
        star = ""
        if value != getattr(defaults, field.name):
            star, marked = "  *", True
        print(f"  {field.name:24s} = {value!r}{star}")
    if marked:
        print()
        print("  (* differs from the prototype default)")

    print()
    print("components (repro.uarch.components registry):")
    for field_name, kind in sorted(components.COMPONENT_FIELDS.items()):
        names = components.component_names(kind)
        selected = getattr(config, field_name)
        print(f"  {field_name:16s} = {selected:12s} "
              f"[registered: {', '.join(names)}]")

    from repro.uarch.vectors import numpy_available
    kernel = components.create_kernel(config)
    caps = kernel.capabilities()
    print()
    print(f"kernel backend {kernel.name!r} capabilities:")
    for cap in sorted(caps):
        print(f"  {cap:16s} = {'yes' if caps[cap] else 'no'}")
    print(f"  {'numpy available':16s} = "
          f"{'yes' if numpy_available() else 'no'}"
          f"{'' if numpy_available() else '  (pure-Python fallback)'}")

    area = estimate_area(config)
    print()
    print(f"estimated area: {area.total_mm2:.1f} mm2 "
          f"(prototype-normalized 130nm-class model, repro.uarch.area)")
    for name, mm2, share in area.rows():
        print(f"  {name:16s} {mm2:8.2f} mm2  {share * 100:5.1f}%")
    return 0


def _cmd_serve(args, runner) -> int:
    """Boot the always-warm service and run until drained.

    The HTTP listener runs in a daemon thread; the main thread parks
    on an event that SIGTERM/SIGINT set, then performs the graceful
    drain — refuse new work with 503, finish in-flight requests (their
    sweep journals close with them), stop the batch workers, write the
    final metrics snapshot to the spool.
    """
    import signal
    import threading
    from pathlib import Path

    from repro.pipeline import default_cache_dir
    from repro.robust import FaultPlan
    from repro.serve import ReproServer, ServeConfig

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.parse(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"bad --faults plan: {exc}", file=sys.stderr)
            return 2
    warm = tuple(name.strip() for name in (args.warm or "").split(",")
                 if name.strip())
    config = ServeConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        cache_dir=Path(args.cache_dir or default_cache_dir()),
        spool_dir=Path(args.spool), batch_window=args.batch_window,
        max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        faults=faults, warm_benchmarks=warm)
    try:
        server = ReproServer(config)
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1

    stop = threading.Event()

    def on_signal(signum, frame):
        print(f"\nrepro serve: caught {signal.Signals(signum).name}, "
              f"draining...", flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    if warm:
        print(f"repro serve: warming {len(warm)} benchmark(s)...",
              flush=True)
        server.service.warm(progress=lambda name: print(f"  warm {name}",
                                                        flush=True))
    server.start()
    host, port = server.address
    print(f"repro serve: listening on http://{host}:{port} "
          f"(cache {config.cache_dir}, spool {config.spool_dir}, "
          f"jobs {config.jobs})", flush=True)
    if faults is not None:
        print(f"repro serve: fault injection active — "
              f"{faults.describe()}", flush=True)
    stop.wait()
    clean = server.drain(timeout=args.drain_timeout)
    snapshot = server.service.spool / "metrics.json"
    outcome = "cleanly" if clean else "WITH WORK ABANDONED"
    print(f"repro serve: drained {outcome}; metrics snapshot at "
          f"{snapshot}", flush=True)
    return 0 if clean else 1


def _add_robust_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="worker attempts per benchmark unit beyond the "
                             "first, before degrading to in-process "
                             "execution (default 2)")
    parser.add_argument("--stage-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit wall-clock budget for warm workers; "
                             "a hung unit is killed, retried, then degraded")


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="artifact cache location "
                             "(default: .repro-cache at the repo root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact cache")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="append JSONL pipeline events to FILE")
    parser.add_argument("--spans", default=None, metavar="FILE",
                        help="append JSONL spans to FILE (stage "
                             "resolutions, sweep points, supervised "
                             "attempts); pool workers inherit the sink; "
                             "export with `repro spans export` "
                             "(docs/OBSERVABILITY.md)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-stage pipeline profile")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TRIPS computer system reproduction (ASPLOS 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suites")

    run_p = sub.add_parser("run", help="run one benchmark on one system")
    run_p.add_argument("benchmark")
    run_p.add_argument("--system", default="cycles",
                       choices=["interp", "risc", "trips", "cycles",
                                "ideal", "core2", "p4", "p3"])
    run_p.add_argument("--variant", default="compiled",
                       choices=["compiled", "hand"])
    run_p.add_argument("--icc", action="store_true",
                       help="use the icc-class optimizer on Intel models")
    run_p.add_argument("--uarch-trace", default=None, metavar="FILE",
                       help="with --system cycles: run live with event "
                            "tracing and write the compact stream to FILE "
                            "(see docs/TRACE.md)")
    run_p.add_argument("--config", action="append", default=None,
                       metavar="KEY=VALUE[,KEY=VALUE]",
                       help="override TripsConfig fields (--system cycles) "
                            "or window/dispatch_cost (--system ideal); "
                            "validated like a sweep spec (docs/SWEEP.md)")
    _add_pipeline_options(run_p)

    trace_p = sub.add_parser(
        "trace", help="per-cycle microarchitectural event trace")
    trace_p.add_argument("benchmark")
    trace_p.add_argument("--system", default="cycles", choices=["cycles"],
                         help="simulator to trace (cycle-level only)")
    trace_p.add_argument("--variant", default="compiled",
                         choices=["compiled", "hand"])
    trace_p.add_argument("--out", default=None, metavar="FILE",
                         help="write the compact delta-encoded event "
                              "stream to FILE")
    trace_p.add_argument("--buckets", type=int, default=48, metavar="N",
                         help="window-occupancy timeline resolution")
    _add_pipeline_options(trace_p)

    asm_p = sub.add_parser("asm", help="print compiled TRIPS assembly")
    asm_p.add_argument("benchmark")
    asm_p.add_argument("--variant", default="compiled",
                       choices=["compiled", "hand"])
    asm_p.add_argument("--block", default="",
                       help="print only the named block")
    _add_pipeline_options(asm_p)

    report_p = sub.add_parser("report",
                              help="regenerate a paper table/figure")
    report_p.add_argument("experiment", nargs="?", default="table1")
    report_p.add_argument("--list", action="store_true",
                          help="list experiment keys")
    report_p.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="warm the artifact cache with N worker "
                               "processes before rendering")
    report_p.add_argument("--heatmaps", action="store_true",
                          help="append trace-derived OPN heatmaps and "
                               "occupancy timelines for the kernel suite")
    _add_robust_options(report_p)
    _add_pipeline_options(report_p)

    chaos_p = sub.add_parser(
        "chaos", help="fault-injection drill against the warm pipeline")
    chaos_p.add_argument("benchmark", nargs="?", default=None)
    chaos_p.add_argument("--faults", required=True, metavar="PLAN",
                         help="comma-separated kind:site[:times[:seconds]] "
                              "faults (kinds: corrupt-cache-entry, "
                              "kill-worker, slow-stage, flaky-stage, "
                              "kill-driver); see docs/ROBUSTNESS.md")
    chaos_p.add_argument("--sweep", default=None, metavar="SPEC",
                         dest="sweep_spec",
                         help="instead of a benchmark drill: SIGKILL a "
                              "subprocess sweep of SPEC mid-journal "
                              "(kill-driver fault), resume it, and "
                              "assert the records match an "
                              "uninterrupted sweep")
    chaos_p.add_argument("--out", default=None, metavar="DIR",
                         help="with --sweep: the drilled sweep's "
                              "output directory (default "
                              "sweeps/chaos-<spec>)")
    chaos_p.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="warm worker processes (default 2)")
    chaos_p.add_argument("--seed", type=int, default=0, metavar="N",
                         help="seed for the fault plan and retry backoff")
    _add_robust_options(chaos_p)
    _add_pipeline_options(chaos_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a declarative design-space sweep")
    sweep_p.add_argument("spec", nargs="?", default=None,
                         help="preset name or JSON/TOML spec file "
                              "(see docs/SWEEP.md)")
    sweep_p.add_argument("--list-presets", action="store_true",
                         help="list the built-in sweep presets")
    sweep_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="simulate points with N worker processes")
    sweep_p.add_argument("--batch", action="store_true",
                         help="advance all points lock-step in one "
                              "process through a shared pipeline "
                              "(fastest for uarch-only sweeps; "
                              "incompatible with --jobs/--faults)")
    sweep_p.add_argument("--points", action="append", default=None,
                         metavar="AXIS=V1,V2",
                         help="restrict or add an axis to the listed "
                              "values (repeatable)")
    sweep_p.add_argument("--benchmarks", default=None, metavar="A,B",
                         help="restrict the sweep to these benchmarks")
    sweep_p.add_argument("--out", default=None, metavar="DIR",
                         help="artifact directory (default sweeps/<name>)")
    sweep_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="inject a deterministic fault plan "
                              "(docs/ROBUSTNESS.md syntax)")
    sweep_p.add_argument("--seed", type=int, default=0, metavar="N",
                         help="seed for the fault plan and retry backoff")
    sweep_p.add_argument("--resume", action="store_true",
                         help="replay the journal already in --out and "
                              "execute only unfinished points (hard "
                              "error if the journal belongs to a "
                              "different spec)")
    sweep_p.add_argument("--shards", type=int, default=None, metavar="N",
                         help="split the grid N ways and run as a "
                              "lease-coordinated sharded driver "
                              "(docs/SWEEP.md); incompatible with "
                              "--batch")
    sweep_p.add_argument("--shard-id", type=int, default=None,
                         metavar="K",
                         help="with --shards: claim shard K first "
                              "(0-based), then steal others")
    sweep_p.add_argument("--no-steal", action="store_true",
                         help="with --shards/--shard-id: run only the "
                              "preferred shard, leaving the rest to "
                              "other drivers")
    sweep_p.add_argument("--lease-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="heartbeat TTL before a shard lease is "
                              "considered stale and reclaimable "
                              "(default 120)")
    _add_robust_options(sweep_p)
    _add_pipeline_options(sweep_p)

    frontier_p = sub.add_parser(
        "frontier", help="Pareto frontier and sensitivity of a sweep")
    frontier_p.add_argument("sweep_dir",
                            help="a sweep's --out directory")

    pack_p = sub.add_parser(
        "pack", help="attested repro packs for sweep directories")
    pack_sub = pack_p.add_subparsers(dest="pack_command", required=True)
    pack_verify = pack_sub.add_parser(
        "verify", help="check a sweep directory against its pack.json "
                       "(exit 1 on any tampered byte)")
    pack_verify.add_argument("sweep_dir", help="an attested sweep "
                                              "directory")
    pack_create = pack_sub.add_parser(
        "create", help="(re)write pack.json attesting the directory as "
                       "it stands now")
    pack_create.add_argument("sweep_dir", help="a sweep directory")

    config_p = sub.add_parser(
        "config", help="inspect the resolved microarchitecture config")
    config_sub = config_p.add_subparsers(dest="config_command",
                                         required=True)
    config_show = config_sub.add_parser(
        "show", help="print the resolved TripsConfig, registered "
                     "component variants, area estimate, and digest")
    config_show.add_argument("--config", action="append", default=None,
                             metavar="KEY=VALUE[,KEY=VALUE]",
                             help="override TripsConfig fields before "
                                  "resolving (same syntax as `repro run "
                                  "--config`)")

    serve_p = sub.add_parser(
        "serve", help="run the always-warm simulation service (HTTP)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8651,
                         help="bind port; 0 picks a free one "
                              "(default 8651)")
    serve_p.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="batch-executor worker threads (default 2)")
    serve_p.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="artifact cache location (default: "
                              ".repro-cache at the repo root; serve "
                              "always caches)")
    serve_p.add_argument("--spool", default="serve-spool", metavar="DIR",
                         help="directory for HTTP-submitted sweep "
                              "journals/packs and the drain metrics "
                              "snapshot (default serve-spool)")
    serve_p.add_argument("--batch-window", type=float, default=0.005,
                         metavar="SECONDS",
                         help="micro-batch coalescing window "
                              "(default 0.005)")
    serve_p.add_argument("--max-queue", type=int, default=64, metavar="N",
                         help="bounded run-queue depth; past it the "
                              "service sheds with 503 (default 64)")
    serve_p.add_argument("--rate", type=float, default=20.0, metavar="R",
                         help="per-client token-bucket refill, "
                              "requests/second; 0 disables rate "
                              "limiting (default 20)")
    serve_p.add_argument("--burst", type=int, default=40, metavar="N",
                         help="per-client token-bucket capacity "
                              "(default 40)")
    serve_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="inject a chaos fault plan into request "
                              "execution (same syntax as `repro chaos "
                              "--faults`); faulted requests answer with "
                              "structured 5xx errors")
    serve_p.add_argument("--seed", type=int, default=0, metavar="N",
                         help="fault-plan probability seed (default 0)")
    serve_p.add_argument("--warm", default=None, metavar="BENCH[,BENCH]",
                         help="pre-warm these benchmarks' artifacts "
                              "before accepting requests")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="graceful-drain budget on SIGTERM/SIGINT "
                              "(default 30)")

    runs_p = sub.add_parser(
        "runs", help="query the persisted run index "
                     "(docs/OBSERVABILITY.md)")
    runs_common = argparse.ArgumentParser(add_help=False)
    runs_common.add_argument("--cache-dir", default=None, metavar="PATH",
                             help="cache directory holding index.db "
                                  "(default: .repro-cache at the repo "
                                  "root)")
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", parents=[runs_common],
        help="most recent indexed runs, as a table")
    runs_list.add_argument("--limit", type=int, default=20, metavar="N",
                           help="rows to show (default 20)")
    runs_show = runs_sub.add_parser(
        "show", parents=[runs_common], help="one indexed run, as JSON")
    runs_show.add_argument("id", type=int, help="row id (see runs list)")
    runs_query = runs_sub.add_parser(
        "query", parents=[runs_common],
        help="filtered rows as JSON lines; exits 1 when "
             "nothing matches")
    runs_query.add_argument("--kind", default=None,
                            help="run kind (run, report, sweep, perf, "
                                 "serve-run, ...)")
    runs_query.add_argument("--run-id", default=None, dest="run_id",
                            help="exact run id")
    runs_query.add_argument("--outcome", default=None,
                            help="outcome filter (ok, holes, error, ...)")
    runs_query.add_argument("--label", default=None,
                            help="substring match on the label")
    runs_query.add_argument("--since-s", type=float, default=None,
                            metavar="SECONDS", dest="since_s",
                            help="only runs started in the last SECONDS")
    runs_query.add_argument("--limit", type=int, default=50, metavar="N",
                            help="rows to return (default 50)")
    runs_compact = runs_sub.add_parser(
        "compact", parents=[runs_common],
        help="retention: drop old rows and vacuum")
    runs_compact.add_argument("--keep", type=int, default=500, metavar="N",
                              help="newest rows to keep (default 500)")
    runs_compact.add_argument("--max-age-days", type=float, default=None,
                              metavar="DAYS", dest="max_age_days",
                              help="also drop rows older than DAYS")

    spans_p = sub.add_parser(
        "spans", help="work with span JSONL files (--spans FILE)")
    spans_sub = spans_p.add_subparsers(dest="spans_command", required=True)
    spans_export = spans_sub.add_parser(
        "export", help="convert spans to Chrome trace-event JSON "
                       "(chrome://tracing, Perfetto)")
    spans_export.add_argument("source", help="span JSONL file")
    spans_export.add_argument("--out", default=None, metavar="FILE",
                              help="output path (default: "
                                   "<source>.trace.json)")

    perf_p = sub.add_parser(
        "perf", help="host-performance benchmark harness")
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    perf_run = perf_sub.add_parser(
        "run", help="time the hot paths and write a BENCH_*.json")
    perf_run.add_argument("--quick", action="store_true",
                          help="reduced repeats (1 warmup + 3 timed) for "
                               "smoke runs and CI")
    perf_run.add_argument("--repeats", type=int, default=None, metavar="N",
                          help="timed repeats per benchmark "
                               "(default 7, or 3 with --quick)")
    perf_run.add_argument("--warmup", type=int, default=None, metavar="N",
                          help="untimed warmup iterations "
                               "(default 2, or 1 with --quick)")
    perf_run.add_argument("--only", default=None, metavar="A,B",
                          help="run only the named benchmarks "
                               "(see `perf list`)")
    perf_run.add_argument("--kernel-backend", default=None, metavar="NAME",
                          help="run the cycle-sim benchmark with this "
                               "registered execution-kernel backend "
                               "(see `repro config show`)")
    perf_run.add_argument("--out", default=None, metavar="FILE",
                          help="output path (default BENCH_<YYYYMMDD>.json "
                               "at the repo root)")
    perf_run.add_argument("--profile-hotspots", type=int, default=0,
                          metavar="K", nargs="?", const=10,
                          help="also print the top-K cProfile cumulative "
                               "hotspots per benchmark (default K=10)")

    perf_cmp = perf_sub.add_parser(
        "compare", help="regression verdicts between two BENCH files")
    perf_cmp.add_argument("base", help="baseline BENCH file "
                                       "(e.g. benchmarks/baseline.json)")
    perf_cmp.add_argument("new", help="candidate BENCH file")
    perf_cmp.add_argument("--warn-pct", type=float, default=10.0,
                          metavar="PCT",
                          help="median slowdown that warns (default 10)")
    perf_cmp.add_argument("--fail-pct", type=float, default=20.0,
                          metavar="PCT",
                          help="median slowdown that fails (default 20)")
    perf_cmp.add_argument("--noise-mads", type=float, default=3.0,
                          metavar="K",
                          help="deltas within K x MAD are ok regardless "
                               "of percentage (default 3)")

    perf_sub.add_parser("list", help="list the registered benchmarks")
    return parser


def _make_runner(args):
    """Build the command's Runner from the pipeline options."""
    from repro.eval.runner import Runner
    from repro.pipeline import (
        Pipeline, TraceLog, cache_enabled, default_cache_dir,
    )

    if getattr(args, "no_cache", False) or not cache_enabled():
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_cache_dir()
    trace = TraceLog(args.trace) if getattr(args, "trace", None) else None
    return Runner(pipeline=Pipeline(cache_dir=cache_dir, trace=trace))


#: Commands the epilogue records into the run index.  ``sweep`` (and
#: ``chaos``, which drives the sweep engine) self-record richer rows in
#: :func:`repro.explore.engine._finish`; ``runs``/``spans``/``list``
#: and friends are reads, not runs.
_INDEXED_COMMANDS = ("run", "report", "trace", "perf")


def _record_invocation(args, runner, code, started_wall: float,
                       wall_s: float) -> None:
    """Append this invocation's row to the persisted run index.

    Best-effort by design: a broken index must never change a
    command's exit code.  Skipped when the cache is disabled — the
    index lives with the artifact store it describes.
    """
    if args.command not in _INDEXED_COMMANDS:
        return
    try:
        from repro import runctx
        from repro.obs import (
            consume_annotations, default_index_path, record_run,
        )
        from repro.pipeline import cache_enabled

        if runner is not None:
            if runner.pipeline.store is None:
                return
            index_path = default_index_path(runner.pipeline.store.base)
        elif cache_enabled():
            index_path = default_index_path(
                getattr(args, "cache_dir", None))
        else:
            return
        notes = consume_annotations()
        label = notes.pop("label", "") or \
            getattr(args, "benchmark", "") or \
            getattr(args, "perf_command", "") or ""
        outcome = notes.pop("outcome", None) or \
            ("ok" if code == 0 else
             "error" if code is None else f"exit-{code}")
        artifacts = notes.pop("artifacts", {})
        extra = {key: notes.pop(key, "")
                 for key in ("spec_digest", "config_digest")}
        metrics = notes
        if runner is not None:
            metrics.setdefault(
                "computes", runner.pipeline.telemetry.computes())
        run = runctx.current()
        record_run(run.run_id, args.command, index_path=index_path,
                   label=str(label), git_sha=run.git_sha,
                   source_digest=run.source_digest,
                   spec_digest=str(extra["spec_digest"]),
                   config_digest=str(extra["config_digest"]),
                   started=started_wall, wall_s=wall_s,
                   outcome=str(outcome), artifacts=artifacts,
                   metrics=metrics)
    except Exception:
        pass


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Mint (or adopt) the invocation's RunContext before any work: the
    # id is exported to the environment here, so every pool worker and
    # every stamped artifact of this invocation shares one run id.
    from repro import runctx
    runctx.current()
    if getattr(args, "spans", None):
        # Installed before any pipeline exists and exported to the
        # environment, so pool workers append to the same span file.
        from repro import obs
        obs.install_recorder(args.spans, export_env=True)
    handler = {"list": _cmd_list, "run": _cmd_run, "trace": _cmd_trace,
               "asm": _cmd_asm, "report": _cmd_report,
               "chaos": _cmd_chaos, "sweep": _cmd_sweep,
               "frontier": _cmd_frontier, "perf": _cmd_perf,
               "config": _cmd_config, "pack": _cmd_pack,
               "serve": _cmd_serve, "runs": _cmd_runs,
               "spans": _cmd_spans}[args.command]
    runner = _make_runner(args) \
        if args.command not in ("list", "frontier", "perf", "config",
                                "pack", "serve", "runs", "spans") \
        else None
    import time as _time
    started_wall = _time.time()
    started_clock = _time.perf_counter()
    code = None
    try:
        code = handler(args, runner)
        return code
    finally:
        if runner is not None:
            if getattr(args, "profile", False):
                from repro.eval.report import format_table
                headers, rows = runner.pipeline.telemetry.profile()
                print()
                print(format_table("Pipeline profile", headers, rows,
                                   "mem/disk hits vs computed misses per "
                                   "stage; seconds are wall-clock."))
            if runner.pipeline.trace is not None:
                runner.pipeline.trace.close()
        _record_invocation(args, runner, code, started_wall,
                           _time.perf_counter() - started_clock)


if __name__ == "__main__":
    sys.exit(main())

"""Dead code elimination and copy/constant propagation.

``eliminate_dead_code`` removes pure instructions whose result is not live
at the point of definition (full backward liveness inside each block,
seeded by the CFG live-out sets).

``propagate_copies`` performs two safe propagations in the non-SSA IR:

* *global single-def propagation*: if ``x`` is defined exactly once, by
  ``x = mov C`` (constant) or ``x = mov y`` where ``y`` is also single-def
  and not a parameter-shadow, every use of ``x`` may be replaced;
* *local propagation*: within one basic block, ``x = mov y`` allows later
  uses of ``x`` to read ``y`` until either register is redefined.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function, Module
from repro.ir.instructions import Opcode
from repro.ir.values import Const, VReg

from repro.opt.analysis import (
    SIDE_EFFECT_OPS, def_counts, liveness, remove_unreachable_blocks,
)


def eliminate_dead_code(func: Function) -> int:
    """Remove dead pure instructions and unreachable blocks."""
    removed = remove_unreachable_blocks(func)
    live_out = liveness(func)
    for block in func.blocks:
        live = set(live_out[block.label])
        keep = []
        for inst in reversed(block.instructions):
            is_dead = (
                inst.op not in SIDE_EFFECT_OPS
                and inst.dest is not None
                and inst.dest not in live
            )
            if is_dead:
                removed += 1
                continue
            if inst.dest is not None:
                live.discard(inst.dest)
            live.update(inst.uses)
            keep.append(inst)
        keep.reverse()
        block.instructions = keep
    return removed


def propagate_copies(func: Function) -> int:
    rewrites = _propagate_single_def(func)
    rewrites += _propagate_local(func)
    return rewrites


def _propagate_single_def(func: Function) -> int:
    counts = def_counts(func)
    resolved: Dict[VReg, object] = {}
    for inst in func.instructions():
        if (inst.op is Opcode.MOV and inst.dest is not None
                and counts.get(inst.dest, 0) == 1):
            src = inst.args[0]
            if isinstance(src, Const):
                resolved[inst.dest] = src
            elif isinstance(src, VReg) and counts.get(src, 0) == 1:
                resolved[inst.dest] = src

    # Chase chains x <- y <- C so a mov-of-mov fully resolves.
    def chase(value, depth=0):
        while isinstance(value, VReg) and value in resolved and depth < 64:
            value = resolved[value]
            depth += 1
        return value

    rewrites = 0
    for inst in func.instructions():
        for i, arg in enumerate(inst.args):
            if isinstance(arg, VReg) and arg in resolved:
                final = chase(resolved[arg])
                if final != arg:
                    inst.args[i] = final
                    rewrites += 1
    return rewrites


def _propagate_local(func: Function) -> int:
    rewrites = 0
    for block in func.blocks:
        available: Dict[VReg, object] = {}
        for inst in block.instructions:
            for i, arg in enumerate(inst.args):
                if isinstance(arg, VReg) and arg in available:
                    inst.args[i] = available[arg]
                    rewrites += 1
            if inst.dest is not None:
                # A write to r kills copies into and out of r.
                available.pop(inst.dest, None)
                for key in [k for k, v in available.items() if v == inst.dest]:
                    del available[key]
                if inst.op is Opcode.MOV:
                    src = inst.args[0]
                    if isinstance(src, Const) or (
                            isinstance(src, VReg) and src != inst.dest):
                        available[inst.dest] = src
    return rewrites


def cleanup_module(module: Module) -> int:
    """Convenience: propagate + DCE for every function in the module."""
    total = 0
    for func in module.functions.values():
        total += propagate_copies(func)
        total += eliminate_dead_code(func)
    return total

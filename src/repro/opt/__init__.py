"""Machine-independent optimizer.

Use :func:`~repro.opt.pipeline.optimize` with a level from
:data:`~repro.opt.pipeline.LEVELS` ("O0", "O2", "ICC", "HAND"); individual
passes are importable for targeted use and for the ablation benchmarks.
"""

from repro.opt.constfold import fold_function, fold_module
from repro.opt.cse import cse_module, eliminate_common_subexpressions
from repro.opt.dce import cleanup_module, eliminate_dead_code, propagate_copies
from repro.opt.inline import inline_module
from repro.opt.pipeline import LEVELS, optimize
from repro.opt.treeheight import reduce_module, reduce_tree_height
from repro.opt.unroll import unroll_function, unroll_module

__all__ = [
    "LEVELS",
    "cleanup_module",
    "cse_module",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_function",
    "fold_module",
    "inline_module",
    "optimize",
    "propagate_copies",
    "reduce_module",
    "reduce_tree_height",
    "unroll_function",
    "unroll_module",
]

"""Test-replicated loop unrolling.

The pass targets the canonical loop shape the front-end builder produces::

    head:  ...cond computation...
           cbr cond -> body, exit
    body:  ...work...
           br head

and rewrites it, for unroll factor K, into a chain::

    head:   cond; cbr -> body.0, exit
    body.0: work; cond'; cbr -> body.1, exit
    body.1: work; cond'; cbr -> body.2, exit
    ...
    body.K-1: work; br head

Replicating the exit test before every copy keeps the transformation exact
for *any* trip count and step — no prologue/epilogue or divisibility
reasoning is needed.  On the RISC target this saves the K-1 unconditional
back-branches; on the TRIPS target the chain is exactly the multi-exit
region the hyperblock former merges into one large block (TRIPS blocks
allow up to 8 exits), which is the paper's primary mechanism for filling
128-instruction blocks.

Register renaming rule for cloned copies: registers that are *read before
written* inside the region (induction variables, accumulators) keep their
identity so loop-carried updates chain correctly; purely local temporaries
get fresh registers per copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import VReg


@dataclass
class _Loop:
    head: BasicBlock
    body: BasicBlock
    exit_label: str
    body_is_true_arm: bool


def find_simple_loops(func: Function) -> List[_Loop]:
    """Find head/body loop pairs matching the canonical shape."""
    preds = func.predecessors()
    loops = []
    for head in func.blocks:
        term = head.terminator
        if term is None or term.op is not Opcode.CBR:
            continue
        for arm, other in ((0, 1), (1, 0)):
            body_label = term.labels[arm]
            exit_label = term.labels[other]
            if body_label == head.label or not func.has_block(body_label):
                continue
            body = func.block(body_label)
            body_term = body.terminator
            if body_term is None or body_term.op is not Opcode.BR:
                continue
            if body_term.labels[0] != head.label:
                continue
            if preds[body_label] != [head.label]:
                continue
            loops.append(_Loop(head, body, exit_label, arm == 0))
            break
    return loops


def _read_before_written(instructions: List[Instruction]) -> set:
    pinned = set()
    written = set()
    for inst in instructions:
        for reg in inst.uses:
            if reg not in written:
                pinned.add(reg)
        if inst.dest is not None:
            written.add(inst.dest)
    return pinned


def _clone_with_renames(instructions: List[Instruction], pinned: set,
                        func: Function,
                        rename: Dict[VReg, VReg]) -> List[Instruction]:
    clones = []
    for inst in instructions:
        args = [rename.get(a, a) if isinstance(a, VReg) else a
                for a in inst.args]
        dest = inst.dest
        if dest is not None and dest not in pinned:
            fresh = func.new_vreg(dest.type, dest.name)
            rename[dest] = fresh
            dest = fresh
        clones.append(Instruction(
            inst.op, dest, args, inst.labels, inst.callee,
            inst.width, inst.signed, inst.offset))
    return clones


def _constant_trip_count(func: Function, loop: _Loop):
    """(start, stop, step) when all are compile-time constants, else None.

    Matches the canonical counted-loop shape the builder emits: the head
    condition ``lt/gt induction, stop`` and a body ending
    ``tmp = add induction, step; induction = mov tmp``; the initial value
    is the last ``induction = mov const`` in a non-body predecessor.
    """
    from repro.ir.values import Const

    term = loop.head.terminator
    cond = term.args[0]
    cmp_inst = None
    for inst in loop.head.body:
        if inst.dest == cond:
            cmp_inst = inst
    if cmp_inst is None or cmp_inst.op not in (Opcode.LT, Opcode.GT):
        return None
    induction = cmp_inst.args[0]
    stop = cmp_inst.args[1]
    if not isinstance(induction, VReg) or not isinstance(stop, Const):
        return None
    # The bump: last two body instructions.
    body = loop.body.body
    if len(body) < 2:
        return None
    bump, writeback = body[-2], body[-1]
    if not (writeback.op is Opcode.MOV and writeback.dest == induction
            and bump.dest is not None and writeback.args[0] == bump.dest
            and bump.op is Opcode.ADD and bump.args[0] == induction
            and isinstance(bump.args[1], Const)):
        return None
    step = bump.args[1].value
    if step == 0:
        return None
    # Initial value: scan non-body predecessors for the defining mov.
    preds = func.predecessors()[loop.head.label]
    start = None
    for label in preds:
        if label == loop.body.label or label.startswith(loop.body.label):
            continue
        for inst in func.block(label).instructions:
            if inst.dest == induction:
                if inst.op is Opcode.MOV and isinstance(inst.args[0], Const):
                    start = inst.args[0].value
                else:
                    return None   # written non-constantly on entry
    if start is None:
        return None
    # No other writers of the induction anywhere else.
    writers = sum(1 for inst in func.instructions()
                  if inst.dest == induction)
    if writers != 2:   # the init mov and the loop writeback
        return None
    if cmp_inst.op is Opcode.LT and step > 0:
        trips = max(0, -(-(stop.value - start) // step))
    elif cmp_inst.op is Opcode.GT and step < 0:
        trips = max(0, -(-(start - stop.value) // -step))
    else:
        return None
    return trips


def _exact_unroll(func: Function, loop: _Loop, factor: int) -> bool:
    """Unroll without intermediate exit tests (trip count divides factor).

    This is the transformation behind the paper's hand-optimized kernels:
    one test per block of ``factor`` iterations, letting the compiler fill
    128-instruction TRIPS blocks with straight dataflow.
    """
    body_work = loop.body.body
    pinned = _read_before_written(body_work) | _used_after_pins(func, loop)
    chain: List[Instruction] = list(body_work)
    for _copy in range(1, factor):
        rename: Dict[VReg, VReg] = {}
        chain.extend(_clone_with_renames(body_work, pinned, func, rename))
    chain.append(Instruction(Opcode.BR, labels=(loop.head.label,)))
    loop.body.instructions = chain
    return True


def _used_after_pins(func: Function, loop: _Loop):
    """Registers defined in the body that are read outside it.

    Renaming those per copy would break their live-out value: they must
    keep their identity so the *last* copy's definition is the one seen
    after the loop.
    """
    used_after = set()
    for block in func.blocks:
        if block is loop.body:
            continue
        for inst in block.instructions:
            used_after.update(inst.uses)
    defined_in_body = {i.dest for i in loop.body.body if i.dest is not None}
    return defined_in_body & used_after


def unroll_loop(func: Function, loop: _Loop, factor: int) -> bool:
    """Unroll one loop in place; returns True when applied."""
    if factor < 2:
        return False
    head_body = loop.head.body
    body_work = loop.body.body
    cond_value = loop.head.terminator.args[0]
    region = body_work + head_body
    # Registers read before written (loop-carried) keep their identity;
    # everything else — including the exit condition — is renamed fresh
    # per copy so each replicated test is an independent definition.
    pinned = _read_before_written(region)
    # Registers written in the region that are live outside must also stay
    # pinned; conservatively pin every register that already existed before
    # this pass created fresh ones -- i.e. pin everything *except* registers
    # whose lifetime is provably local.  Locality here: defined before any
    # use within the region and not used by head's condition chain outside.
    # The read-before-written rule already pins loop-carried names; names
    # that are defined first in the region but read after the loop would be
    # broken by renaming, so pin those too.
    after_labels = set(func.reachable_labels()) - {loop.body.label}
    used_after = set()
    for block in func.blocks:
        if block.label in after_labels and block is not loop.body:
            for inst in block.instructions:
                used_after.update(inst.uses)
    defined_in_body = {i.dest for i in body_work if i.dest is not None}
    pinned |= (defined_in_body & used_after)

    chain: List[Instruction] = list(body_work)
    for copy in range(1, factor):
        rename: Dict[VReg, VReg] = {}
        last = copy == factor - 1
        # Re-evaluate the head's condition computation before each extra copy.
        head_clone = _clone_with_renames(head_body, pinned, func, rename)
        chain.extend(head_clone)
        cond = rename.get(cond_value, cond_value)
        next_label = f"{loop.body.label}.u{copy}"
        if loop.body_is_true_arm:
            labels = (next_label, loop.exit_label)
        else:
            labels = (loop.exit_label, next_label)
        chain.append(Instruction(Opcode.CBR, args=[cond], labels=labels))
        # Marker: the following instructions belong to the next chained
        # block.  We split the chain into real blocks below.
        chain.append(_SPLIT)
        body_clone = _clone_with_renames(body_work, pinned, func, dict(rename))
        chain.extend(body_clone)
        if last:
            chain.append(Instruction(Opcode.BR, labels=(loop.head.label,)))

    # Materialize the chain into blocks.
    segments: List[List[Instruction]] = [[]]
    for item in chain:
        if item is _SPLIT:
            segments.append([])
        else:
            segments[-1].append(item)

    loop.body.instructions = segments[0]
    previous = loop.body
    for copy, segment in enumerate(segments[1:], start=1):
        label = f"{loop.body.label}.u{copy}"
        block = func.add_block(label)
        block.instructions = segment
        previous = block
    return True


_SPLIT = object()


def unroll_function(func: Function, factor: int,
                    max_body_size: int = 48) -> int:
    """Unroll every simple loop with a small enough body; returns count.

    Loops with a compile-time trip count divisible by (a divisor of) the
    factor unroll *exactly* — no intermediate exit tests; the rest use
    test-replicated unrolling, which is correct for any trip count.
    """
    applied = 0
    for loop in find_simple_loops(func):
        if len(loop.body.body) > max_body_size:
            continue
        trips = _constant_trip_count(func, loop)
        if trips is not None and trips > 0:
            exact = factor
            while exact > 1 and trips % exact != 0:
                exact -= 1
            if exact > 1 and _exact_unroll(func, loop, exact):
                applied += 1
                continue
        if unroll_loop(func, loop, factor):
            applied += 1
    return applied


def unroll_module(module: Module, factor: int,
                  max_body_size: int = 48) -> int:
    return sum(unroll_function(f, factor, max_body_size)
               for f in module.functions.values())

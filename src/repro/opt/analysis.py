"""Shared dataflow analyses for optimization passes.

Provides per-function liveness (backward, over the CFG) and def-counting
helpers used by DCE and copy propagation.  The IR is non-SSA, so passes
recompute these on demand rather than maintaining them incrementally.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.values import VReg


def def_counts(func: Function) -> Dict[VReg, int]:
    """Number of defining instructions for each virtual register."""
    counts: Dict[VReg, int] = {}
    for param in func.params:
        counts[param] = counts.get(param, 0) + 1
    for inst in func.instructions():
        if inst.dest is not None:
            counts[inst.dest] = counts.get(inst.dest, 0) + 1
    return counts


def block_use_def(block) -> Tuple[Set[VReg], Set[VReg]]:
    """(use, def) sets for a block: use = read before any write."""
    uses: Set[VReg] = set()
    defs: Set[VReg] = set()
    for inst in block.instructions:
        for reg in inst.uses:
            if reg not in defs:
                uses.add(reg)
        if inst.dest is not None:
            defs.add(inst.dest)
    return uses, defs


def liveness(func: Function) -> Dict[str, Set[VReg]]:
    """Live-out register sets per block label (fixpoint backward dataflow)."""
    use: Dict[str, Set[VReg]] = {}
    defs: Dict[str, Set[VReg]] = {}
    for block in func.blocks:
        use[block.label], defs[block.label] = block_use_def(block)

    live_in: Dict[str, Set[VReg]] = {b.label: set() for b in func.blocks}
    live_out: Dict[str, Set[VReg]] = {b.label: set() for b in func.blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: Set[VReg] = set()
            for succ in block.successors():
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_out


#: Opcodes whose instructions must never be deleted even if the destination
#: register is dead, because they have side effects or end a block.
SIDE_EFFECT_OPS = frozenset({
    Opcode.STORE, Opcode.CALL, Opcode.BR, Opcode.CBR, Opcode.RET,
})


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks not reachable from the entry; returns count removed."""
    reachable = set(func.reachable_labels())
    doomed: List[str] = [b.label for b in func.blocks if b.label not in reachable]
    for label in doomed:
        func.remove_block(label)
    return len(doomed)

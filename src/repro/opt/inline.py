"""Function inlining.

Inlines calls to small, non-recursive functions.  The callee's blocks are
cloned into the caller with fresh registers and labels; parameters become
MOVs of the actual arguments; each RET becomes a MOV into the call's
destination (if any) followed by a branch to the continuation block.

The paper notes that TRIPS block formation suffers when frequent calls cut
blocks early; inlining in the optimizer pipeline is the standard mitigation
and is applied by the gcc/icc-class pipelines before block formation.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import VReg

#: Callees at or below this instruction count are inlined.
DEFAULT_SIZE_LIMIT = 40

#: Upper bound on the caller growth per pass, to avoid code explosion.
MAX_INLINES_PER_FUNCTION = 24


def _is_recursive(module: Module, name: str,
                  visiting: Set[str] = None) -> bool:
    visiting = visiting or set()
    if name in visiting:
        return True
    visiting = visiting | {name}
    func = module.functions.get(name)
    if func is None:
        return False
    for inst in func.instructions():
        if inst.op is Opcode.CALL:
            if inst.callee == name or _is_recursive(module, inst.callee, visiting):
                return True
    return False


def inline_module(module: Module,
                  size_limit: int = DEFAULT_SIZE_LIMIT) -> int:
    """Inline eligible call sites in every function; returns site count."""
    eligible = {
        name for name, func in module.functions.items()
        if func.instruction_count() <= size_limit
        and not _is_recursive(module, name)
    }
    total = 0
    for func in module.functions.values():
        total += _inline_in_function(module, func, eligible)
    return total


def _inline_in_function(module: Module, caller: Function,
                        eligible: Set[str]) -> int:
    inlined = 0
    progress = True
    while progress and inlined < MAX_INLINES_PER_FUNCTION:
        progress = False
        for block in list(caller.blocks):
            site = next(
                (i for i, inst in enumerate(block.instructions)
                 if inst.op is Opcode.CALL and inst.callee in eligible
                 and inst.callee != caller.name),
                None)
            if site is None:
                continue
            _inline_call(module, caller, block, site, inlined)
            inlined += 1
            progress = True
            break
    return inlined


def _inline_call(module: Module, caller: Function, block, site: int,
                 serial: int) -> None:
    call = block.instructions[site]
    callee = module.function(call.callee)
    prefix = f"inl{serial}.{callee.name}."

    # Split the caller block: everything after the call moves to a new
    # continuation block.
    continuation = caller.add_block(prefix + "cont")
    continuation.instructions = block.instructions[site + 1:]
    block.instructions = block.instructions[:site]

    # Fresh registers for everything the callee defines.
    rename: Dict[VReg, VReg] = {}
    for param, arg in zip(callee.params, call.args):
        fresh = caller.new_vreg(param.type, param.name)
        rename[param] = fresh
        block.append(Instruction(Opcode.MOV, fresh, [arg]))
    block.append(Instruction(Opcode.BR, labels=(prefix + callee.entry.label,)))

    def mapped(reg: VReg) -> VReg:
        if reg not in rename:
            rename[reg] = caller.new_vreg(reg.type, reg.name)
        return rename[reg]

    for src_block in callee.blocks:
        clone = caller.add_block(prefix + src_block.label)
        for inst in src_block.instructions:
            args = [mapped(a) if isinstance(a, VReg) else a for a in inst.args]
            if inst.op is Opcode.RET:
                if call.dest is not None:
                    clone.instructions.append(
                        Instruction(Opcode.MOV, call.dest, [args[0]]))
                clone.instructions.append(
                    Instruction(Opcode.BR, labels=(continuation.label,)))
                continue
            dest = mapped(inst.dest) if inst.dest is not None else None
            labels = tuple(prefix + l for l in inst.labels)
            clone.instructions.append(Instruction(
                inst.op, dest, args, labels, inst.callee,
                inst.width, inst.signed, inst.offset))

"""Local common-subexpression elimination and redundant-load elimination.

Both analyses are per-basic-block (the dominant payoff in kernel-heavy
codes) and memory-safe:

* pure expressions are keyed by (opcode, canonicalized operands); a write
  to any operand register kills dependent entries;
* loads are keyed by (base value, offset, width, signedness); a store or a
  call kills load entries unless the store provably does not alias
  (same base register, disjoint constant offset ranges);
* a load following a store to the identical location forwards the stored
  value (store-to-load forwarding — the paper's "replace store/load pairs
  with direct communication" optimization at the IR level).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    CMP_OPS, COMMUTATIVE, FLOAT_BINOPS, INT_BINOPS, Instruction, Opcode,
)
from repro.ir.values import Const, VReg

_PURE_OPS = INT_BINOPS | FLOAT_BINOPS | CMP_OPS | {Opcode.I2F, Opcode.F2I}


def _operand_key(value) -> Tuple:
    if isinstance(value, VReg):
        return ("r", value.id)
    return ("c", value.type.value, value.value)


def _expr_key(inst: Instruction) -> Tuple:
    keys = [_operand_key(a) for a in inst.args]
    if inst.op in COMMUTATIVE:
        keys.sort()
    return (inst.op.value, *keys)


def _load_key(base, offset: int, width: int, signed: bool, is_float: bool) -> Tuple:
    return ("mem", _operand_key(base), offset, width, signed, is_float)


def _ranges_disjoint(off_a: int, width_a: int, off_b: int, width_b: int) -> bool:
    return off_a + width_a <= off_b or off_b + width_b <= off_a


def eliminate_common_subexpressions(func: Function) -> int:
    rewrites = 0
    for block in func.blocks:
        rewrites += _cse_block(block)
    return rewrites


def _cse_block(block) -> int:
    rewrites = 0
    exprs: Dict[Tuple, VReg] = {}     # pure expression -> defining register
    mem: Dict[Tuple, object] = {}     # load/forwarding key -> known value

    def kill_register(reg: VReg) -> None:
        reg_key = _operand_key(reg)
        for key in [k for k in exprs
                    if reg_key in k[1:] or exprs[k] == reg]:
            del exprs[key]
        for key in [k for k in mem if k[1] == reg_key or mem[k] == reg]:
            del mem[key]

    for i, inst in enumerate(block.instructions):
        op = inst.op

        if op in _PURE_OPS and inst.dest is not None:
            key = _expr_key(inst)
            if key in exprs:
                block.instructions[i] = Instruction(
                    Opcode.MOV, inst.dest, [exprs[key]])
                rewrites += 1
                kill_register(inst.dest)
                continue
            kill_register(inst.dest)
            # Do not record expressions that read their own destination
            # (e.g. x = x + 1): the key would refer to the stale value.
            if inst.dest not in inst.uses:
                exprs[key] = inst.dest
            continue

        if op is Opcode.LOAD:
            key = _load_key(inst.args[0], inst.offset, inst.width,
                            inst.signed, inst.dest.type.is_float)
            if key in mem and mem[key] != inst.dest:
                block.instructions[i] = Instruction(
                    Opcode.MOV, inst.dest, [mem[key]])
                rewrites += 1
                kill_register(inst.dest)
                continue
            kill_register(inst.dest)
            if inst.args[0] != inst.dest:
                mem[key] = inst.dest
            continue

        if op is Opcode.STORE:
            value, base = inst.args[0], inst.args[1]
            base_key = _operand_key(base)
            survivors = {}
            for key, known in mem.items():
                same_base = key[1] == base_key
                if same_base and _ranges_disjoint(
                        key[2], key[3], inst.offset, inst.width):
                    survivors[key] = known
            mem.clear()
            mem.update(survivors)
            # Forward the stored value to later same-location loads.  A
            # narrow store only forwards when the value register is known to
            # fit; forwarding full-width (8-byte) stores is always exact.
            if inst.width == 8:
                is_float = isinstance(value, Const) and value.type.is_float \
                    or isinstance(value, VReg) and value.type.is_float
                fwd = _load_key(base, inst.offset, 8, True, is_float)
                mem[fwd] = value
                if not is_float:
                    mem[_load_key(base, inst.offset, 8, False, False)] = value
            continue

        if op is Opcode.CALL:
            mem.clear()
            if inst.dest is not None:
                kill_register(inst.dest)
            continue

        if inst.dest is not None:  # MOV and anything else defining a value
            kill_register(inst.dest)
            if op is Opcode.MOV and isinstance(inst.args[0], VReg):
                # record mov as a trivial expression for dedup
                pass
    return rewrites


def cse_module(module: Module) -> int:
    return sum(eliminate_common_subexpressions(f)
               for f in module.functions.values())

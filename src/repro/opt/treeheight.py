"""Tree-height reduction.

Rebalances linear chains of an associative operator (integer ADD/MUL,
float FADD/FMUL) into log-depth trees.  The paper lists tree-height
reduction among the TRIPS-specific optimizations used to expose
instruction-level parallelism: a chain ``(((a+b)+c)+d)`` serializes the
dataflow graph, while ``(a+b)+(c+d)`` halves its depth.

Scope: within one basic block; a chain link must be used exactly once (by
the next link) and links must be adjacent in dependence, not necessarily
in program order.  Float reassociation changes rounding, which the paper's
hand optimizations accepted; the pass therefore takes an ``allow_float``
flag so the gcc-class pipeline can stay strict.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import VReg

_ASSOCIATIVE_INT = (Opcode.ADD, Opcode.MUL)
_ASSOCIATIVE_FLOAT = (Opcode.FADD, Opcode.FMUL)

#: Chains shorter than this are left alone (no depth to win).
MIN_CHAIN = 3


def reduce_tree_height(func: Function, allow_float: bool = True) -> int:
    ops = _ASSOCIATIVE_INT + (_ASSOCIATIVE_FLOAT if allow_float else ())
    rebuilt = 0
    for block in func.blocks:
        for op in ops:
            rebuilt += _rebalance_block(func, block, op)
    return rebuilt


def _rebalance_block(func: Function, block, op: Opcode) -> int:
    instructions = block.instructions
    index_of: Dict[VReg, int] = {}
    for i, inst in enumerate(instructions):
        if inst.dest is not None:
            # Mark *re*definitions: a register defined twice in the block
            # is not a safe chain link.
            index_of[inst.dest] = -2 if inst.dest in index_of else i

    # Use/def counts must be function-wide: a link register consumed once
    # here but also read in another block (or defined again elsewhere) is
    # not safe to dissolve.
    use_count: Dict[VReg, int] = {}
    defs_fn: Dict[VReg, int] = {}
    for inst in func.instructions():
        for reg in inst.uses:
            use_count[reg] = use_count.get(reg, 0) + 1
        if inst.dest is not None:
            defs_fn[inst.dest] = defs_fn.get(inst.dest, 0) + 1
    for reg, count in defs_fn.items():
        if count > 1 and reg in index_of:
            index_of[reg] = -2

    def chain_from(i: int) -> List[int]:
        """Indices of a maximal single-use chain ending at instruction i."""
        chain = [i]
        while True:
            inst = instructions[chain[-1]]
            grown = False
            for arg in inst.args:
                if not isinstance(arg, VReg):
                    continue
                j = index_of.get(arg, -1)
                if j < 0 or j >= chain[-1]:
                    continue
                producer = instructions[j]
                if producer.op is not op or use_count.get(arg, 0) != 1:
                    continue
                # The producer's value must not be live elsewhere.
                chain.append(j)
                grown = True
                break
            if not grown:
                return chain

    # Find chain roots: op instructions not feeding another same-op
    # single-use link later in the block.
    feeds_chain = set()
    for i, inst in enumerate(instructions):
        if inst.op is not op:
            continue
        for arg in inst.args:
            if isinstance(arg, VReg) and use_count.get(arg, 0) == 1:
                j = index_of.get(arg, -1)
                if j >= 0 and j < i and instructions[j].op is op:
                    feeds_chain.add(j)

    rebuilt = 0
    for i in range(len(instructions) - 1, -1, -1):
        inst = instructions[i]
        if inst.op is not op or i in feeds_chain:
            continue
        chain = chain_from(i)
        if len(chain) < MIN_CHAIN:
            continue
        if not _leaves_stable(instructions, sorted(chain)):
            continue
        rebuilt += _rebuild(func, block, op, sorted(chain))
        # Rebuild invalidates the bookkeeping; one chain per block per op
        # per invocation keeps the pass simple (pipelines run it to fixpoint
        # via repetition if desired).
        break
    return rebuilt


def _leaves_stable(instructions, chain: List[int]) -> bool:
    """All leaf registers keep their value until the chain root.

    Rebalancing moves every leaf read down to the root's position; if an
    instruction between a link and the root redefines a leaf register, the
    transformation would read the wrong value.
    """
    chain_set = set(chain)
    root_index = chain[-1]
    link_dests = {instructions[i].dest for i in chain}
    for i in chain:
        leaf_regs = [a for a in instructions[i].args
                     if isinstance(a, VReg) and a not in link_dests]
        for j in range(i + 1, root_index + 1):
            if j in chain_set:
                continue
            dest = instructions[j].dest
            if dest is not None and dest in leaf_regs:
                return False
    return True


def _rebuild(func: Function, block, op: Opcode, chain: List[int]) -> int:
    """Replace the chain with a balanced tree written at the root's index."""
    instructions = block.instructions
    chain_set = set(chain)
    root_index = chain[-1]
    root = instructions[root_index]
    link_dests = {instructions[i].dest for i in chain}

    # Leaves: operands of chain links that are not themselves chain links.
    leaves = []
    for i in chain:
        for arg in instructions[i].args:
            if isinstance(arg, VReg) and arg in link_dests:
                continue
            leaves.append(arg)

    value_type = root.dest.type
    tree_insts: List[Instruction] = []
    level = list(leaves)
    while len(level) > 1:
        next_level = []
        for k in range(0, len(level) - 1, 2):
            if len(level) == 2:
                dest = root.dest  # final combine reuses the root register
            else:
                dest = func.new_vreg(value_type, "thr")
            tree_insts.append(Instruction(op, dest, [level[k], level[k + 1]]))
            next_level.append(dest)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level

    new_instructions = []
    for i, inst in enumerate(instructions):
        if i == root_index:
            new_instructions.extend(tree_insts)
        elif i not in chain_set:
            new_instructions.append(inst)
    block.instructions = new_instructions
    return 1


def reduce_module(module: Module, allow_float: bool = True,
                  iterations: int = 4) -> int:
    total = 0
    for _ in range(iterations):
        applied = sum(reduce_tree_height(f, allow_float)
                      for f in module.functions.values())
        total += applied
        if not applied:
            break
    return total

"""Constant folding and algebraic simplification.

Folds instructions whose operands are all constants, and applies algebraic
identities (x+0, x*1, x*0, x*2^k -> shl, x-x, x^x).  Folded instructions
become MOVs of constants so that downstream copy propagation can dissolve
them entirely.
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    CMP_OPS, FLOAT_BINOPS, INT_BINOPS, Instruction, Opcode,
)
from repro.ir.interp import TrapError, _eval_compare, _eval_float_binop, _eval_int_binop
from repro.ir.values import Const, const


def fold_module(module: Module) -> int:
    """Fold constants in every function; returns number of rewrites."""
    return sum(fold_function(f) for f in module.functions.values())


def fold_function(func: Function) -> int:
    rewrites = 0
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            new = _fold_instruction(inst)
            if new is not None:
                block.instructions[i] = new
                rewrites += 1
    return rewrites


def _fold_instruction(inst: Instruction):
    op = inst.op
    args = inst.args
    all_const = all(isinstance(a, Const) for a in args)

    if op in INT_BINOPS and all_const:
        try:
            value = _eval_int_binop(op, args[0].value, args[1].value)
        except TrapError:
            return None  # preserve the trap at run time
        return _mov(inst, value)
    if op in FLOAT_BINOPS and all_const:
        try:
            value = _eval_float_binop(op, args[0].value, args[1].value)
        except TrapError:
            return None
        return _mov(inst, value)
    if op in CMP_OPS and all_const:
        return _mov(inst, _eval_compare(op, args[0].value, args[1].value))
    if op is Opcode.I2F and all_const:
        return _mov(inst, float(args[0].value))
    if op is Opcode.F2I and all_const:
        return _mov(inst, int(args[0].value))

    return _simplify_algebraic(inst)


def _mov(inst: Instruction, value) -> Instruction:
    return Instruction(Opcode.MOV, inst.dest, [const(value)])


def _is_const(value, want) -> bool:
    return isinstance(value, Const) and value.value == want


def _simplify_algebraic(inst: Instruction):
    op, args = inst.op, inst.args
    if op is Opcode.ADD:
        if _is_const(args[1], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
        if _is_const(args[0], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[1]])
    elif op is Opcode.SUB:
        if _is_const(args[1], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
        if args[0] == args[1] and not isinstance(args[0], Const):
            return _mov(inst, 0)
    elif op is Opcode.MUL:
        for a, b in ((args[0], args[1]), (args[1], args[0])):
            if _is_const(b, 0):
                return _mov(inst, 0)
            if _is_const(b, 1):
                return Instruction(Opcode.MOV, inst.dest, [a])
            if isinstance(b, Const) and b.value > 1 and _is_power_of_two(b.value):
                shift = b.value.bit_length() - 1
                return Instruction(Opcode.SHL, inst.dest, [a, const(shift)])
    elif op in (Opcode.SHL, Opcode.SHR, Opcode.SRA):
        if _is_const(args[1], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
    elif op is Opcode.XOR:
        if args[0] == args[1] and not isinstance(args[0], Const):
            return _mov(inst, 0)
        if _is_const(args[1], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
    elif op in (Opcode.AND, Opcode.OR):
        if args[0] == args[1] and not isinstance(args[0], Const):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
        if op is Opcode.OR and _is_const(args[1], 0):
            return Instruction(Opcode.MOV, inst.dest, [args[0]])
        if op is Opcode.AND and _is_const(args[1], 0):
            return _mov(inst, 0)
    return None


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def flatten_add_chains(func: Function) -> int:
    """Reassociate constant-add chains: ``b = a+c1; d = b+c2 -> d = a+(c1+c2)``.

    Serial chains like unrolled induction updates (``i+1+1+1...``) become
    parallel adds off a common root, shortening the dataflow critical path
    — the induction rewrite every unrolling compiler performs.  Local to a
    block; a mapping dies when its root or alias is redefined.
    """
    from repro.ir.values import VReg, const as make_const

    rewrites = 0
    predecessors = func.predecessors()
    end_state = {}   # label -> base mapping at block end
    for block in func.blocks:
        # Chains may span the blocks of a test-replicated unrolled loop:
        # inherit the mapping through a unique already-processed
        # predecessor (sound: that is the only way control arrives here).
        base = {}   # reg -> (root reg, accumulated constant)
        preds = predecessors.get(block.label, [])
        if len(preds) == 1 and preds[0] in end_state:
            base = dict(end_state[preds[0]])
        for inst in block.instructions:
            is_const_add = (
                inst.op is Opcode.ADD and len(inst.args) == 2
                and isinstance(inst.args[0], VReg)
                and isinstance(inst.args[1], Const))
            new_entry = None
            if is_const_add:
                root, offset = base.get(inst.args[0],
                                        (inst.args[0], 0))
                total = offset + inst.args[1].value
                if root != inst.args[0] or total != inst.args[1].value:
                    inst.args = [root, make_const(total)]
                    rewrites += 1
                if inst.dest is not None and inst.dest != root:
                    new_entry = (root, total)
            elif inst.op is Opcode.MOV and isinstance(inst.args[0], VReg):
                # Aliases propagate the mapping: i = mov x keeps x's root.
                # When the root is the register being redefined (the
                # loop-carried update i = mov(i+1)), re-root the chain at
                # the mov's source, which is a stable fresh temporary.
                source = inst.args[0]
                alias = base.get(source)
                if (alias is None or alias[0] == inst.dest) \
                        and source != inst.dest:
                    alias = (source, 0)
                if alias is not None and alias[0] != inst.dest:
                    new_entry = alias
            dest = inst.dest
            if dest is not None:
                base.pop(dest, None)
                for key in [k for k, (r, _o) in base.items() if r == dest]:
                    del base[key]
                if new_entry is not None:
                    base[dest] = new_entry
        end_state[block.label] = base
    return rewrites


def flatten_module(module: Module) -> int:
    return sum(flatten_add_chains(f) for f in module.functions.values())

"""Named optimization pipelines.

Four pipelines model the compilers the paper compares:

* ``O0`` — front-end output as-is.
* ``O2`` ("gcc-class") — inlining, folding, copy propagation, local CSE
  with load forwarding, DCE, and modest unrolling (factor 2).  Used for
  the PowerPC baseline and the reference-platform "gcc" bars.
* ``ICC`` ("icc-class") — O2 plus deeper unrolling (factor 4) and integer
  tree-height reduction.  Used for the reference-platform "icc" bars.
* ``HAND`` — the mechanized analogue of the paper's hand optimization:
  aggressive unrolling to fill 128-instruction TRIPS blocks (factor 8),
  float reassociation, and repeated cleanup.  Used for TRIPS-hand bars.
"""

from __future__ import annotations

import copy as _copy
from typing import Callable, Dict, List

from repro.ir.function import Module
from repro.ir.verify import verify_module

from repro.opt.constfold import flatten_module, fold_module
from repro.opt.cse import cse_module
from repro.opt.dce import cleanup_module
from repro.opt.inline import inline_module
from repro.opt.treeheight import reduce_module
from repro.opt.unroll import unroll_module

OptLevel = str

_PIPELINES: Dict[str, List[Callable[[Module], int]]] = {}


def _cleanup_round(module: Module) -> int:
    changed = 1
    total = 0
    rounds = 0
    while changed and rounds < 8:
        changed = fold_module(module)
        changed += cse_module(module)
        changed += cleanup_module(module)
        total += changed
        rounds += 1
    return total


def _pipeline_o2(module: Module) -> None:
    inline_module(module)
    _cleanup_round(module)
    unroll_module(module, factor=2, max_body_size=24)
    flatten_module(module)
    _cleanup_round(module)


def _pipeline_icc(module: Module) -> None:
    inline_module(module, size_limit=64)
    _cleanup_round(module)
    unroll_module(module, factor=4, max_body_size=32)
    flatten_module(module)
    _cleanup_round(module)
    reduce_module(module, allow_float=False)
    _cleanup_round(module)


def _pipeline_hand(module: Module) -> None:
    inline_module(module, size_limit=96)
    _cleanup_round(module)
    unroll_module(module, factor=8, max_body_size=48)
    flatten_module(module)
    _cleanup_round(module)
    reduce_module(module, allow_float=True)
    _cleanup_round(module)


#: Public pipeline names.
LEVELS = ("O0", "O2", "ICC", "HAND")


def optimize(module: Module, level: OptLevel = "O2",
             verify: bool = True) -> Module:
    """Run the named pipeline on a *deep copy* of the module.

    The input module is left untouched so one front-end build can feed
    several backend/optimization configurations, as the experiments do.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; "
                         f"choose one of {LEVELS}")
    result = _copy.deepcopy(module)
    if level == "O2":
        _pipeline_o2(result)
    elif level == "ICC":
        _pipeline_icc(result)
    elif level == "HAND":
        _pipeline_hand(result)
    if verify:
        verify_module(result)
    return result

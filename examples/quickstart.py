#!/usr/bin/env python3
"""Quickstart: write a program, compile it for TRIPS, and run it on every
simulator in the stack.

The flow mirrors how the repository reproduces the paper:

1. author a program in the machine-independent IR,
2. optimize it with a named pipeline ("O2" plays gcc, "HAND" plays the
   paper's hand optimization),
3. lower it to TRIPS blocks (hyperblock formation -> dataflow conversion
   -> placement) and to the RISC baseline,
4. execute it on the interpreter (golden model), the TRIPS functional and
   cycle-level simulators, and the Core 2 reference model,
5. read the paper's headline statistics off the runs.

Run:  python examples/quickstart.py
"""

from repro.ir import Builder, Type, run_module
from repro.opt import optimize
from repro.refmodels import CORE2, run_platform
from repro.risc import lower_module as lower_risc, run_program
from repro.trips import lower_module as lower_trips, run_trips
from repro.uarch import run_cycles


def build_dot_product(n: int = 128):
    """c = sum(a[i] * b[i]) over two float vectors."""
    b = Builder()
    import struct
    init = b"".join(struct.pack("<d", (i * 7 % 13) / 13.0) for i in range(n))
    vec_a = b.global_array("vec_a", n, 8, init)
    vec_b = b.global_array("vec_b", n, 8, init)
    b.function("main", return_type=Type.I64)
    acc = b.mov(0.0, "acc")
    with b.loop(0, n) as i:
        offset = b.shl(i, 3)
        x = b.fload(b.add(vec_a, offset))
        y = b.fload(b.add(vec_b, offset))
        b.assign(acc, b.fadd(acc, b.fmul(x, y)))
    b.ret(b.f2i(b.fmul(acc, 1000.0)))  # integer checksum
    return b.module


def main() -> None:
    module = build_dot_product()

    golden, interp = run_module(module)
    print(f"interpreter (golden model): {golden} "
          f"({interp.stats.executed} IR instructions)")

    optimized = optimize(module, "O2")

    risc_program = lower_risc(optimized)
    risc_result, risc_sim = run_program(risc_program)
    assert risc_result == golden
    print(f"RISC ('PowerPC') baseline:  {risc_result} "
          f"({risc_sim.stats.executed} instructions, "
          f"{risc_sim.stats.loads + risc_sim.stats.stores} memory accesses)")

    lowered = lower_trips(optimized)
    trips_result, trips_sim = run_trips(lowered.program)
    assert trips_result == golden
    stats = trips_sim.stats
    print(f"TRIPS functional:           {trips_result} "
          f"(avg block {stats.fetched / stats.blocks_committed:.1f} "
          f"instructions, {stats.moves_executed} fanout moves)")

    cycle_result, cycle_sim = run_cycles(lowered)
    assert cycle_result == golden
    print(f"TRIPS cycle-level:          {cycle_result} "
          f"({cycle_sim.stats.cycles} cycles, IPC {cycle_sim.stats.ipc:.2f}, "
          f"{cycle_sim.stats.avg_instructions_in_window:.0f} instructions "
          f"in flight)")

    core2_result, core2_stats = run_platform(module, CORE2, "O2")
    assert core2_result == golden
    print(f"Core 2 reference model:     {core2_result} "
          f"({core2_stats.cycles} cycles, IPC {core2_stats.ipc:.2f})")

    speedup = core2_stats.cycles / cycle_sim.stats.cycles
    print(f"\nTRIPS speedup over Core 2 (cycles): {speedup:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Hand-written TRIPS EDGE assembly, end to end.

The paper's best results come from hand-assembled kernels.  This example
writes a block-atomic sum-reduction *directly in TRIPS assembly* — header
read/write instructions, dataflow targets, predicated exits — assembles
it with `repro.isa.asm.parse_program`, validates it against the prototype
block constraints, and runs it on both the functional and the cycle-level
simulators.

The kernel sums data[0..n-1]:

    G3 = n (argument), G13 = running index, G14 = accumulator

Each block activation handles one element and loops; registers carry the
loop state between blocks exactly as Section 2 of the paper describes.

Run:  python examples/hand_assembly.py
"""

import struct

from repro.isa import parse_program
from repro.trips import run_trips
from repro.trips.codegen import LoweredProgram
from repro.trips.placement import place_block
from repro.uarch import run_cycles

N = 64
BASE = 0x1000

PROGRAM = f"""
# sum-reduction, one element per block
func @main entry=init params=0

block init
  # G13 <- 0 (index), G14 <- 0 (accumulator)
  i0: geni 0 -> w0 w1
  i1: bro @loop
  w0: write G13
  w1: write G14
end

block loop
  r0: read G13 -> i0.op0 i1.op0
  r1: read G14 -> i5.op0
  # address = base + 8*i ; test = i+1 < N
  i0: shl -> i2.op0
  i1: add -> i6.op0 w0
  i2: add -> i3.op0
  i3: load lsid=0 w=8 d=0 -> i5.op1
  i4: geni {BASE} -> i2.op1
  i5: add -> w1
  i6: tlt -> i7.p i8.p
  i7: <T> bro @loop
  i8: <F> bro @done
  i9: geni 3 -> i0.op1
  i10: geni 1 -> i1.op1
  i11: geni {N} -> i6.op1
  w0: write G13
  w1: write G14
end

block done
  r0: read G14 -> w0
  i0: ret
  w0: write G3
end

endfunc
"""


def main() -> None:
    data = [(k * 37 + 11) % 101 for k in range(N)]
    expected = sum(data)

    program = parse_program(PROGRAM)
    program.globals_image = [
        (BASE, b"".join(struct.pack("<q", v) for v in data))]
    program.data_end = BASE + 8 * N

    for func in program.functions.values():
        for block in func.blocks.values():
            block.validate()
    print("assembled and validated "
          f"{sum(len(f.blocks) for f in program.functions.values())} blocks")

    result, sim = run_trips(program)
    print(f"functional simulator: {result} "
          f"(expected {expected}) — {'OK' if result == expected else 'FAIL'}")
    print(f"  {sim.stats.blocks_committed} blocks committed, "
          f"{sim.stats.executed} instructions executed, "
          f"{sim.stats.register_reads} register reads")

    placements = {block.label: place_block(block, "sps")
                  for func in program.functions.values()
                  for block in func.blocks.values()}
    lowered = LoweredProgram(program, placements)
    cycle_result, csim = run_cycles(lowered)
    assert cycle_result == expected
    print(f"cycle-level simulator: {cycle_result} in {csim.stats.cycles} "
          f"cycles (IPC {csim.stats.ipc:.2f}, "
          f"avg OPN hops {csim.opn.stats.average_hops():.2f})")


if __name__ == "__main__":
    main()

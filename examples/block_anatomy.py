#!/usr/bin/env python3
"""Anatomy of a TRIPS block: how C-like code becomes EDGE dataflow.

Reproduces the paper's Figure 1 walk-through on a real example: an
if-converted absolute-difference kernel.  The script prints

* the IR the front end produced,
* the hyperblock the formation pass grew (predication chains visible),
* the final TRIPS block in assembly form — read/write header
  instructions, fanout MOVs, predicated arms, NULL tokens, and exits,
* the block's composition statistics and encoded size, and
* the instruction-to-tile placement on the 4x4 execution array.

Run:  python examples/block_anatomy.py
"""

from collections import Counter

from repro.ir import Builder, Type, run_module
from repro.isa import block_bytes, block_nops, format_block
from repro.opt import optimize
from repro.trips import lower_module, place_block, run_trips
from repro.trips.placement import tile_xy


def build_absdiff(n: int = 32):
    """out[i] = |a[i] - b[i]| — a classic if-conversion target."""
    builder = Builder()
    from repro.bench._util import Lcg, init_i64
    rng = Lcg(3)
    a = builder.global_array("a", n, 8,
                             init_i64(rng.below(100) for _ in range(n)))
    b = builder.global_array("b", n, 8,
                             init_i64(rng.below(100) for _ in range(n)))
    out = builder.global_array("out", n, 8)
    builder.function("main", return_type=Type.I64)
    with builder.loop(0, n) as i:
        offset = builder.shl(i, 3)
        x = builder.load(builder.add(a, offset))
        y = builder.load(builder.add(b, offset))
        diff = builder.sub(x, y)
        negative = builder.lt(diff, 0)
        with builder.if_then(negative):
            builder.assign(diff, builder.sub(0, diff))
        builder.store(diff, builder.add(out, offset))
    total = builder.mov(0)
    with builder.loop(0, n) as i:
        value = builder.load(builder.add(out, builder.shl(i, 3)))
        builder.assign(total, builder.add(total, value))
    builder.ret(total)
    return builder.module


def main() -> None:
    module = build_absdiff()
    golden = run_module(module)[0]

    print("=" * 70)
    print("IR (front-end output, first blocks)")
    print("=" * 70)
    ir_text = str(module.function("main"))
    print("\n".join(ir_text.splitlines()[:24]))
    print("...")

    optimized = optimize(module, "O2")
    lowered = lower_module(optimized)
    result, sim = run_trips(lowered.program)
    assert result == golden

    blocks = list(lowered.program.all_blocks())
    hot = max(blocks, key=lambda b: len(b.instructions))

    print()
    print("=" * 70)
    print(f"TRIPS block '{hot.label}' "
          f"({len(hot.instructions)} instructions, "
          f"{len(hot.reads)} reads, {len(hot.writes)} writes)")
    print("=" * 70)
    print(format_block(hot))

    print()
    print("=" * 70)
    print("Composition and encoding")
    print("=" * 70)
    mix = Counter(inst.category for inst in hot.instructions)
    for category, count in mix.most_common():
        print(f"  {category:10s} {count:4d}  "
              f"({100.0 * count / len(hot.instructions):.0f}%)")
    predicated = sum(1 for i in hot.instructions if i.predicate)
    print(f"  predicated {predicated:4d}")
    print(f"  encoded size: {block_bytes(hot, compressed=True)} bytes "
          f"compressed ({block_nops(hot, compressed=True)} pad NOPs), "
          f"{block_bytes(hot, compressed=False)} bytes uncompressed")

    print()
    print("=" * 70)
    print("Placement on the 4x4 execution array (instruction indices)")
    print("=" * 70)
    placement = place_block(hot, "sps")
    grid = [[[] for _ in range(4)] for _ in range(4)]
    for index, tile in placement.tiles.items():
        x, y = tile_xy(tile)
        grid[y][x].append(index)
    for y in range(4):
        row = " | ".join(f"{','.join(str(i) for i in grid[y][x][:5]):>18s}"
                         for x in range(4))
        print(f"  {row}")

    print()
    print(f"Dynamic ISA statistics for the whole run "
          f"({sim.stats.blocks_committed} blocks committed):")
    print(f"  fetched {sim.stats.fetched}, executed {sim.stats.executed}, "
          f"useful {sim.stats.useful}, moves {sim.stats.moves_executed}, "
          f"mispredicated {sim.stats.fetched_not_executed}")


if __name__ == "__main__":
    main()

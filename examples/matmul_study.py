#!/usr/bin/env python3
"""Matrix-multiply case study (Section 6 of the paper).

Sweeps the optimization levels the paper compares — compiled (gcc-class),
icc-class, and hand-optimized — over the dense matrix-multiply kernel, on
TRIPS and on the three reference platforms, and reports cycles, IPC, and
FLOPS per cycle, ending with the paper's published GotoBLAS comparison.

Run:  python examples/matmul_study.py
"""

from repro.bench import get
from repro.ir import run_module
from repro.opt import optimize
from repro.refmodels import PLATFORMS, PUBLISHED_MATMUL_FPC, run_platform
from repro.trips import lower_module, run_trips
from repro.uarch import run_cycles


def main() -> None:
    bench = get("matrix")
    module = bench.module()
    golden = run_module(module)[0]
    n = 20
    flops = 2 * n * n * n

    print(f"matrix: {n}x{n}x{n} dense multiply, {flops} flops, "
          f"checksum {golden}")
    print()
    print(f"{'configuration':28s} {'cycles':>9s} {'IPC':>6s} {'FPC':>6s}")
    print("-" * 55)

    for level, label in (("O2", "TRIPS compiled (gcc-class)"),
                         ("ICC", "TRIPS icc-class"),
                         ("HAND", "TRIPS hand-optimized")):
        lowered = lower_module(optimize(module, level))
        result, sim = run_cycles(lowered)
        assert result == golden
        fpc = flops / sim.stats.cycles
        print(f"{label:28s} {sim.stats.cycles:9d} {sim.stats.ipc:6.2f} "
              f"{fpc:6.2f}")

    for key in ("core2", "p4", "p3"):
        spec = PLATFORMS[key]
        for level, tag in (("O2", "gcc"), ("ICC", "icc")):
            result, stats = run_platform(module, spec, level)
            assert result == golden
            fpc = flops / stats.cycles
            print(f"{spec.name + ' ' + tag:28s} {stats.cycles:9d} "
                  f"{stats.ipc:6.2f} {fpc:6.2f}")

    print()
    print("Published hand-tuned library results the paper quotes "
          "(GotoBLAS / SSE):")
    for platform, value in PUBLISHED_MATMUL_FPC.items():
        print(f"  {platform:20s} {value:.2f} FLOPS/cycle")
    print()
    print("Paper's claim: TRIPS reaches 5.20 FPC without SIMD, 40% above "
          "the best Core 2 SSE code (Section 6).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Next-block prediction study (Figure 7 of the paper).

Runs a branchy SPEC proxy through four predictor configurations:

* A — an Alpha 21264-like tournament predictor on basic-block code,
* B — the TRIPS exit+target predictor on basic-block code,
* H — the TRIPS predictor on hyperblock code (the prototype),
* I — the "lessons learned" configuration (9 KB target predictor).

Hyperblocks make *fewer* predictions (one per block instead of one per
basic block), which is how the prototype wins on MPKI even where its raw
misprediction rate is worse — the paper's Section 5.1 argument.

Run:  python examples/predictor_study.py [benchmark]
"""

import sys

from repro.eval import SHARED_RUNNER
from repro.eval.experiments import _run_alpha_on_trace, _run_trips_predictor
from repro.uarch import TripsConfig, improved_predictor_config


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    runner = SHARED_RUNNER

    print(f"benchmark: {name}")
    basic = runner.block_trace(name, "basic")
    hyper = runner.block_trace(name, "hyper")
    useful = runner.trips_functional(name).useful
    print(f"  basic-block code:  {basic.blocks} block transitions")
    print(f"  hyperblock code:   {hyper.blocks} block transitions "
          f"({100.0 * (1 - hyper.blocks / basic.blocks):.0f}% fewer "
          f"predictions)")
    print(f"  useful instructions: {useful}")
    print()

    configs = [
        ("A: Alpha-like, basic blocks", *_run_alpha_on_trace(basic)),
        ("B: TRIPS pred., basic blocks",
         *_run_trips_predictor(basic, TripsConfig())),
        ("H: TRIPS pred., hyperblocks",
         *_run_trips_predictor(hyper, TripsConfig())),
        ("I: scaled target predictor",
         *_run_trips_predictor(hyper, improved_predictor_config())),
    ]

    print(f"{'configuration':32s} {'predictions':>12s} {'misses':>8s} "
          f"{'miss%':>7s} {'MPKI':>7s}")
    print("-" * 72)
    for label, predictions, misses in configs:
        rate = 100.0 * misses / max(predictions, 1)
        mpki = 1000.0 * misses / max(useful, 1)
        print(f"{label:32s} {predictions:12d} {misses:8d} {rate:6.1f}% "
              f"{mpki:7.2f}")

    print()
    print("Paper reference (SPEC INT means): MPKI 14.9 (A), 14.8 (B), "
          "8.5 (H), 6.9 (I).")


if __name__ == "__main__":
    main()
